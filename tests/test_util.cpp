// Unit tests for glva_util: strings, CSV, tables, charts, stats, CLI.

#include <gtest/gtest.h>

#include "util/ascii_chart.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/errors.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/text_table.h"

namespace {

using namespace glva::util;

// ---------------------------------------------------------------- strings

TEST(StringUtil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, TrimKeepsInteriorWhitespace) {
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StringUtil, SplitOnSeparator) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtil, SplitWhitespaceDropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(StringUtil, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtil, ToLowerIsAsciiOnly) {
  EXPECT_EQ(to_lower("AbC_9"), "abc_9");
}

TEST(StringUtil, StartsEndsWith) {
  EXPECT_TRUE(starts_with("myers_and", "myers_"));
  EXPECT_FALSE(starts_with("and", "myers_"));
  EXPECT_TRUE(ends_with("trace.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "trace.csv"));
}

TEST(StringUtil, ReplaceAllHandlesOverlapsAndEmpty) {
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
}

TEST(StringUtil, ParseDoubleAcceptsOnlyCleanNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("  -1e3 ").value(), -1000.0);
  EXPECT_FALSE(parse_double("2.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("nanx").has_value());
}

TEST(StringUtil, ParseIntRejectsFractions) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
}

TEST(StringUtil, FormatDoubleTrimsIntegralValues) {
  EXPECT_EQ(format_double(15.0), "15");
  EXPECT_EQ(format_double(0.25), "0.25");
  EXPECT_EQ(format_double(-3.0), "-3");
}

TEST(StringUtil, FormatDoubleHandlesSpecials) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
}

TEST(StringUtil, ValidSidFollowsSbmlRules) {
  EXPECT_TRUE(is_valid_sid("GFP"));
  EXPECT_TRUE(is_valid_sid("_x9"));
  EXPECT_FALSE(is_valid_sid("9x"));
  EXPECT_FALSE(is_valid_sid(""));
  EXPECT_FALSE(is_valid_sid("a-b"));
}

// ------------------------------------------------------------------- CSV

TEST(Csv, WritesSimpleRows) {
  CsvWriter csv;
  csv.row("a", 1, 2.5);
  EXPECT_EQ(csv.str(), "a,1,2.5\n");
}

TEST(Csv, QuotesFieldsWithSeparatorsAndQuotes) {
  CsvWriter csv;
  csv.add_row({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(csv.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, ParseRoundTripsQuotedContent) {
  CsvWriter csv;
  csv.add_row({"a,b", "plain", "q\"q"});
  csv.add_row({"1", "2", "3"});
  const auto rows = parse_csv(csv.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "plain", "q\"q"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(Csv, ParseRejectsUnterminatedQuote) {
  EXPECT_THROW(parse_csv("\"abc"), glva::ParseError);
}

TEST(Csv, ParseHandlesCrLf) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

// ------------------------------------------------------------ text table

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.set_align(1, TextTable::Align::kRight);
  table.add_row({"x", "1"});
  table.add_row({"longer", "123"});
  const std::string out = table.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("x           1"), std::string::npos);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NO_THROW(table.str());
}

// ------------------------------------------------------------ ascii chart

TEST(AsciiChart, TimeSeriesRendersThresholdLine) {
  std::vector<double> times{0, 1, 2, 3, 4};
  std::vector<double> values{0, 10, 20, 30, 40};
  ChartOptions options;
  options.width = 20;
  options.height = 5;
  options.threshold = 15.0;
  const std::string out = render_time_series("t", times, values, options);
  EXPECT_NE(out.find('-'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, TimeSeriesHandlesEmptyData) {
  const std::string out = render_time_series("t", {}, {});
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChart, BarChartScalesToMax) {
  const std::string out =
      render_bar_chart("b", {"x", "y"}, {1.0, 2.0}, 10);
  // y gets the full 10 hashes, x half.
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(AsciiChart, RunLengthEncodesStreams) {
  EXPECT_EQ(render_run_length({false, false, true, true, true, false}),
            "0x2 1x3 0x1");
  EXPECT_EQ(render_run_length({}), "(empty)");
  EXPECT_EQ(render_run_length({true}), "1x1");
}

// ------------------------------------------------------------------ stats

TEST(Stats, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsMergeEqualsSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
}

TEST(Stats, RunningStatsMergeFuzzAcrossEverySplitPoint) {
  // Deterministic sample with spread and repeats; every split of it must
  // merge back to the sequential statistics (parallel-Welford identity).
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) {
    xs.push_back(((i * 7919) % 23) * 0.125 - 1.0);
  }
  RunningStats all;
  for (const double x : xs) all.add(x);
  for (std::size_t split = 0; split <= xs.size(); ++split) {
    RunningStats left, right;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < split ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count()) << "split " << split;
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12) << "split " << split;
    EXPECT_NEAR(left.variance(), all.variance(), 1e-10) << "split " << split;
    EXPECT_DOUBLE_EQ(left.min(), all.min()) << "split " << split;
    EXPECT_DOUBLE_EQ(left.max(), all.max()) << "split " << split;
  }
}

TEST(Stats, RunningStatsEmptyAndSingletonEdges) {
  RunningStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);

  RunningStats one;
  one.add(3.5);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.mean(), 3.5);
  EXPECT_EQ(one.variance(), 0.0);  // no spread information
  EXPECT_DOUBLE_EQ(one.min(), 3.5);
  EXPECT_DOUBLE_EQ(one.max(), 3.5);

  // Merging an empty accumulator in either direction changes nothing.
  RunningStats lhs = one;
  lhs.merge(empty);
  EXPECT_EQ(lhs.count(), 1u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 3.5);
  empty.merge(one);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.5);
}

TEST(Stats, PercentileInterpolates) {
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_THROW((void)percentile({}, 0.5), glva::InvalidArgument);
}

TEST(Stats, HistogramClampsOutliers) {
  const std::vector<double> xs{-10.0, 0.5, 1.5, 99.0};
  const auto counts = histogram(xs, 0.0, 2.0, 2);
  EXPECT_EQ(counts[0], 2u);  // -10 clamps into bin 0
  EXPECT_EQ(counts[1], 2u);  // 99 clamps into bin 1
}

TEST(Stats, OtsuSeparatesBimodalSample) {
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(1.0 + 0.01 * (i % 7));
  for (int i = 0; i < 500; ++i) xs.push_back(60.0 + 0.01 * (i % 7));
  const double threshold = otsu_threshold(xs);
  EXPECT_GT(threshold, 5.0);
  EXPECT_LT(threshold, 58.0);
}

TEST(Stats, OtsuHandlesConstantSignal) {
  EXPECT_DOUBLE_EQ(otsu_threshold(std::vector<double>{5.0, 5.0, 5.0}), 5.0);
  EXPECT_THROW((void)otsu_threshold(std::vector<double>{}),
               glva::InvalidArgument);
}

// -------------------------------------------------------------------- CLI

TEST(Cli, ParsesOptionsFlagsAndPositionals) {
  CliParser cli;
  cli.add_option("threshold", "15", "ThVAL");
  cli.add_flag("two-stage", "expand");
  const char* argv[] = {"prog", "--threshold", "40", "--two-stage", "extra"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("threshold"), 40.0);
  EXPECT_TRUE(cli.get_flag("two-stage"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "extra");
}

TEST(Cli, SupportsEqualsSyntax) {
  CliParser cli;
  cli.add_option("seed", "1", "seed");
  const char* argv[] = {"prog", "--seed=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("seed"), 42);
}

TEST(Cli, HelpRequestsReturnFalse) {
  CliParser cli;
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.help("prog").find("usage"), std::string::npos);
}

TEST(Cli, RejectsUnknownAndValuelessOptions) {
  CliParser cli;
  cli.add_option("x", "", "x");
  const char* bad[] = {"prog", "--nope", "1"};
  EXPECT_THROW((void)cli.parse(3, bad), glva::InvalidArgument);
  CliParser cli2;
  cli2.add_option("x", "", "x");
  const char* missing[] = {"prog", "--x"};
  EXPECT_THROW((void)cli2.parse(2, missing), glva::InvalidArgument);
}

TEST(Cli, TypedGettersValidate) {
  CliParser cli;
  cli.add_option("name", "abc", "a string");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW((void)cli.get_double("name"), glva::InvalidArgument);
  EXPECT_THROW((void)cli.get("undeclared"), glva::InvalidArgument);
}

}  // namespace
