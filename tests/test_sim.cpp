// Unit tests for glva_sim: RNG, traces, schedules, the indexed priority
// queue, the three SSA kernels (statistical correctness against analytic
// results), the ODE reference, and the virtual lab.

#include <gtest/gtest.h>

#include <cmath>

#include "crn/network.h"
#include "sbml/model.h"
#include "sim/indexed_priority_queue.h"
#include "sim/input_schedule.h"
#include "sim/ode.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/ssa_direct.h"
#include "sim/trace.h"
#include "sim/virtual_lab.h"
#include "util/errors.h"
#include "util/stats.h"

namespace {

using namespace glva;
using namespace glva::sim;

// -------------------------------------------------------------------- RNG

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  util::RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, ExponentialHasCorrectMoments) {
  Rng rng(11);
  util::RunningStats stats;
  const double rate = 4.0;
  for (int i = 0; i < 40000; ++i) stats.add(rng.exponential(rate));
  EXPECT_NEAR(stats.mean(), 1.0 / rate, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0 / rate, 0.01);
}

TEST(Rng, NormalHasCorrectMoments) {
  Rng rng(13);
  util::RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.variance(), 1.0, 0.05);
}

TEST(Rng, PoissonSmallAndLargeMeans) {
  Rng rng(17);
  for (const double mean : {0.5, 5.0, 80.0}) {
    util::RunningStats stats;
    for (int i = 0; i < 30000; ++i) {
      stats.add(static_cast<double>(rng.poisson(mean)));
    }
    EXPECT_NEAR(stats.mean(), mean, mean * 0.05 + 0.02) << mean;
    EXPECT_NEAR(stats.variance(), mean, mean * 0.12 + 0.05) << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, BelowIsBoundedAndRoughlyUniform) {
  Rng rng(19);
  std::vector<std::size_t> counts(5, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    ++counts[v];
  }
  for (const auto count : counts) {
    EXPECT_NEAR(static_cast<double>(count), 10000.0, 450.0);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, SplitGivesIndependentStreams) {
  Rng a(5);
  Rng b = a.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

// ------------------------------------------------------------------ trace

TEST(Trace, AppendsAndLooksUpSeries) {
  Trace trace({"A", "B"});
  trace.append(0.0, {1.0, 2.0});
  trace.append(1.0, {3.0, 4.0});
  EXPECT_EQ(trace.sample_count(), 2u);
  EXPECT_EQ(trace.series("B")[1], 4.0);
  EXPECT_EQ(trace.species_index("A"), 0u);
  EXPECT_THROW((void)trace.series("C"), InvalidArgument);
  EXPECT_THROW((void)trace.series(5), InvalidArgument);
}

TEST(Trace, AppendRejectsNarrowRows) {
  Trace trace({"A", "B"});
  EXPECT_THROW(trace.append(0.0, {1.0}), InvalidArgument);
}

TEST(Trace, ExtendRequiresMatchingSpeciesAndOrderedTime) {
  Trace head({"A"});
  head.append(0.0, {1.0});
  Trace tail({"A"});
  tail.append(1.0, {2.0});
  head.extend(tail);
  EXPECT_EQ(head.sample_count(), 2u);

  Trace wrong({"B"});
  EXPECT_THROW(head.extend(wrong), InvalidArgument);
  Trace backwards({"A"});
  backwards.append(0.5, {0.0});
  EXPECT_THROW(head.extend(backwards), InvalidArgument);
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace trace({"X"});
  trace.append(0.0, {7.0});
  EXPECT_EQ(trace.to_csv(), "time,X\n0,7\n");
}

// --------------------------------------------------------------- schedule

TEST(InputSchedule, CombinationSweepCoversAllCombosMsbFirst) {
  const auto schedule =
      InputSchedule::combination_sweep({"A", "B"}, 1000.0, 15.0);
  ASSERT_EQ(schedule.phases().size(), 4u);
  EXPECT_EQ(schedule.phases()[0].levels, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(schedule.phases()[1].levels, (std::vector<double>{0.0, 15.0}));
  EXPECT_EQ(schedule.phases()[2].levels, (std::vector<double>{15.0, 0.0}));
  EXPECT_EQ(schedule.phases()[3].levels, (std::vector<double>{15.0, 15.0}));
  EXPECT_DOUBLE_EQ(schedule.phases()[2].start_time, 500.0);
}

TEST(InputSchedule, PhaseLookupPicksLatestStarted) {
  const auto schedule =
      InputSchedule::combination_sweep({"A"}, 100.0, 1.0);
  EXPECT_EQ(schedule.phase_index_at(0.0), 0u);
  EXPECT_EQ(schedule.phase_index_at(49.9), 0u);
  EXPECT_EQ(schedule.phase_index_at(50.0), 1u);
  EXPECT_EQ(schedule.phase_index_at(1e9), 1u);
  EXPECT_THROW((void)schedule.phase_index_at(-1.0), InvalidArgument);
}

TEST(InputSchedule, ValidatesPhases) {
  InputSchedule schedule(std::vector<std::string>{"A"});
  schedule.add_phase(0.0, {1.0});
  EXPECT_THROW(schedule.add_phase(0.0, {2.0}), InvalidArgument);  // not increasing
  EXPECT_THROW(schedule.add_phase(5.0, {1.0, 2.0}), InvalidArgument);  // arity
  EXPECT_THROW((void)InputSchedule::combination_sweep({}, 10.0, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)InputSchedule::combination_sweep({"A"}, -1.0, 1.0),
               InvalidArgument);
}

// --------------------------------------------------- indexed priority queue

TEST(IndexedPriorityQueue, TracksMinimumUnderUpdates) {
  IndexedPriorityQueue queue(4);
  queue.update(0, 5.0);
  queue.update(1, 3.0);
  queue.update(2, 8.0);
  EXPECT_EQ(queue.top_key(), 1u);
  queue.update(1, 9.0);
  EXPECT_EQ(queue.top_key(), 0u);
  queue.update(3, 0.5);
  EXPECT_EQ(queue.top_key(), 3u);
  EXPECT_TRUE(queue.check_invariants());
  EXPECT_THROW(queue.update(4, 1.0), InvalidArgument);
}

TEST(IndexedPriorityQueue, RandomizedOperationsKeepInvariants) {
  Rng rng(31);
  IndexedPriorityQueue queue(64);
  for (int step = 0; step < 5000; ++step) {
    const auto key = static_cast<std::size_t>(rng.below(64));
    queue.update(key, rng.uniform() * 100.0);
    if (step % 256 == 0) {
      ASSERT_TRUE(queue.check_invariants());
    }
    // top must be <= a random other key's value
    const auto probe = static_cast<std::size_t>(rng.below(64));
    ASSERT_LE(queue.top_value(), queue.value(probe));
  }
  EXPECT_TRUE(queue.check_invariants());
}

// ------------------------------------------------------------- simulators

sbml::Model birth_death(double kb, double kd) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 0.0);
  m.add_parameter("kb", kb);
  m.add_parameter("kd", kd);
  m.add_reaction("birth", {}, {{"X", 1.0}}, "kb");
  m.add_reaction("death", {{"X", 1.0}}, {}, "kd * X");
  return m;
}

/// The birth–death process has a Poisson(kb/kd) stationary distribution:
/// mean = variance = kb/kd. Every exact kernel must reproduce it.
void check_birth_death_stationary(SsaMethod method, double tolerance) {
  const auto net = crn::ReactionNetwork::compile(birth_death(2.0, 0.1));
  const auto simulator = make_simulator(method);
  const InputSchedule schedule;  // no inputs

  util::RunningStats stats;
  SimulationOptions options;
  options.sampling_period = 1.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    options.seed = seed;
    const Trace trace = simulator->run(net, schedule, 2000.0, options);
    const auto& xs = trace.series("X");
    // Discard the burn-in (mean reached by ~5 time constants = 50 tu).
    for (std::size_t k = 200; k < xs.size(); ++k) stats.add(xs[k]);
  }
  EXPECT_NEAR(stats.mean(), 20.0, tolerance) << "method mean";
  EXPECT_NEAR(stats.variance(), 20.0, 8.0 * tolerance) << "method variance";
}

TEST(SsaDirect, BirthDeathStationaryMoments) {
  check_birth_death_stationary(SsaMethod::kDirect, 0.8);
}

TEST(SsaNextReaction, BirthDeathStationaryMoments) {
  check_birth_death_stationary(SsaMethod::kNextReaction, 0.8);
}

TEST(SsaTauLeap, BirthDeathStationaryMean) {
  // Approximate method: allow a looser tolerance.
  check_birth_death_stationary(SsaMethod::kTauLeap, 1.5);
}

TEST(Simulator, SeedsAreReproducibleAndDistinct) {
  const auto net = crn::ReactionNetwork::compile(birth_death(2.0, 0.1));
  const DirectMethod simulator;
  SimulationOptions options;
  options.seed = 9;
  const Trace a = simulator.run(net, {}, 100.0, options);
  const Trace b = simulator.run(net, {}, 100.0, options);
  options.seed = 10;
  const Trace c = simulator.run(net, {}, 100.0, options);
  EXPECT_EQ(a.series("X"), b.series("X"));
  EXPECT_NE(a.series("X"), c.series("X"));
}

TEST(Simulator, SamplingGridIsComplete) {
  const auto net = crn::ReactionNetwork::compile(birth_death(2.0, 0.1));
  const DirectMethod simulator;
  SimulationOptions options;
  options.sampling_period = 0.5;
  const Trace trace = simulator.run(net, {}, 100.0, options);
  EXPECT_EQ(trace.sample_count(), 201u);  // 0, 0.5, ..., 100
  for (std::size_t k = 1; k < trace.times().size(); ++k) {
    ASSERT_DOUBLE_EQ(trace.times()[k] - trace.times()[k - 1], 0.5);
  }
}

TEST(Simulator, CountsStayNonNegative) {
  const auto net = crn::ReactionNetwork::compile(birth_death(0.5, 2.0));
  for (const auto method :
       {SsaMethod::kDirect, SsaMethod::kNextReaction, SsaMethod::kTauLeap}) {
    const auto simulator = make_simulator(method);
    const Trace trace = simulator->run(net, {}, 500.0, {});
    for (const double x : trace.series("X")) ASSERT_GE(x, 0.0);
  }
}

TEST(Simulator, DirectAndNextReactionAgreeStatistically) {
  // Two exact kernels must give statistically indistinguishable means on a
  // regulated two-species cascade.
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("R", 0.0);
  m.add_species("P", 0.0);
  m.add_parameter("b", 1.0);
  m.add_reaction("makeR", {}, {{"R", 1.0}}, "b");
  m.add_reaction("degR", {{"R", 1.0}}, {}, "0.05 * R");
  m.add_reaction("makeP", {}, {{"P", 1.0}}, "1.2 * (1 - hill(R, 10, 2))",
                 {sbml::ModifierReference{"R"}});
  m.add_reaction("degP", {{"P", 1.0}}, {}, "0.02 * P");
  const auto net = crn::ReactionNetwork::compile(m);

  const auto run_mean = [&](SsaMethod method) {
    const auto simulator = make_simulator(method);
    util::RunningStats stats;
    SimulationOptions options;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      options.seed = seed;
      const Trace trace = simulator->run(net, {}, 1500.0, options);
      const auto& ps = trace.series("P");
      for (std::size_t k = 500; k < ps.size(); ++k) stats.add(ps[k]);
    }
    return stats.mean();
  };
  const double direct = run_mean(SsaMethod::kDirect);
  const double nrm = run_mean(SsaMethod::kNextReaction);
  EXPECT_NEAR(direct, nrm, std::max(1.0, 0.08 * direct));
}

TEST(Simulator, RejectsBadArguments) {
  const auto net = crn::ReactionNetwork::compile(birth_death(1.0, 0.1));
  const DirectMethod simulator;
  EXPECT_THROW((void)simulator.run(net, {}, 0.0, {}), InvalidArgument);
  SimulationOptions options;
  options.sampling_period = 0.0;
  EXPECT_THROW((void)simulator.run(net, {}, 10.0, options), InvalidArgument);
  // Clamping a non-boundary species is an error.
  const auto schedule = InputSchedule::constant({"X"}, {5.0});
  EXPECT_THROW((void)simulator.run(net, schedule, 10.0, {}), InvalidArgument);
}

// -------------------------------------------------------------------- ODE

TEST(Ode, ExponentialDecayMatchesClosedForm) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 100.0);
  m.add_parameter("kd", 0.05);
  m.add_reaction("decay", {{"X", 1.0}}, {}, "kd * X");
  const auto net = crn::ReactionNetwork::compile(m);
  const OdeRk4 integrator(0.01);
  const Trace trace = integrator.run(net, {}, 50.0, 1.0);
  for (std::size_t k = 0; k < trace.sample_count(); ++k) {
    const double expected = 100.0 * std::exp(-0.05 * trace.times()[k]);
    ASSERT_NEAR(trace.series("X")[k], expected, 0.01);
  }
}

TEST(Ode, SsaMeanConvergesToOde) {
  // The paper's premise: ODE = continuum limit; SSA fluctuates around it.
  const auto model = birth_death(2.0, 0.1);
  const auto net = crn::ReactionNetwork::compile(model);
  const OdeRk4 integrator(0.01);
  const Trace ode = integrator.run(net, {}, 100.0, 1.0);

  const DirectMethod ssa;
  util::RunningStats at_end;
  SimulationOptions options;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    options.seed = seed;
    const Trace trace = ssa.run(net, {}, 100.0, options);
    at_end.add(trace.series("X").back());
  }
  EXPECT_NEAR(at_end.mean(), ode.series("X").back(), 2.5);
}

// ------------------------------------------------------------ virtual lab

sbml::Model inverter_model() {
  sbml::Model m;
  m.id = "inv";
  m.add_compartment("cell");
  m.add_species("In", 0.0);
  m.add_species("Out", 0.0);
  m.add_parameter("b", 1.2);
  m.add_reaction("prod", {}, {{"Out", 1.0}}, "b * (1 - hill(In, 5, 3.5))",
                 {sbml::ModifierReference{"In"}});
  m.add_reaction("deg", {{"Out", 1.0}}, {}, "0.02 * Out");
  return m;
}

TEST(VirtualLab, DeclareInputsMarksBoundary) {
  VirtualLab lab(inverter_model());
  lab.declare_inputs({"In"});
  EXPECT_TRUE(lab.model().find_species("In")->boundary_condition);
  EXPECT_TRUE(lab.network().is_boundary(lab.network().species_index("In")));
  EXPECT_THROW(lab.declare_inputs({"Ghost"}), InvalidArgument);
}

TEST(VirtualLab, ClampedInputsFollowTheSchedule) {
  VirtualLab lab(inverter_model());
  lab.declare_inputs({"In"});
  const auto sweep = lab.run_combination_sweep(2000.0, 15.0);
  const auto& in = sweep.trace.series("In");
  const auto& times = sweep.trace.times();
  for (std::size_t k = 0; k < in.size(); ++k) {
    const double expected = times[k] < 1000.0 ? 0.0 : 15.0;
    ASSERT_DOUBLE_EQ(in[k], expected) << "t=" << times[k];
  }
}

TEST(VirtualLab, InverterRespondsToInput) {
  VirtualLab lab(inverter_model());
  lab.declare_inputs({"In"});
  const auto sweep = lab.run_combination_sweep(4000.0, 15.0);
  const auto& out = sweep.trace.series("Out");
  // Settled OFF phase (input absent): output high near plateau 60.
  util::RunningStats off_phase;
  for (std::size_t k = 1000; k < 2000; ++k) off_phase.add(out[k]);
  EXPECT_GT(off_phase.mean(), 40.0);
  // Settled ON phase: output at the leak floor.
  util::RunningStats on_phase;
  for (std::size_t k = 3000; k < 4000; ++k) on_phase.add(out[k]);
  EXPECT_LT(on_phase.mean(), 5.0);
}

TEST(VirtualLab, SweepRequiresDeclaredInputs) {
  VirtualLab lab(inverter_model());
  EXPECT_THROW((void)lab.run_combination_sweep(100.0, 15.0), InvalidArgument);
}

}  // namespace
