// Tests for the `glva` CLI (driven through run_cli with captured streams).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "app/commands.h"
#include "logic/simd/kernel_set.h"
#include "sbml/reader.h"
#include "sbol/sbol_io.h"

namespace {

using glva::app::run_cli;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Temp file that cleans up after itself.
class TempPath {
public:
  explicit TempPath(std::string name) : path_("glva_test_" + std::move(name)) {}
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const noexcept { return path_; }

private:
  std::string path_;
};

TEST(Cli, NoArgumentsPrintsUsageAndFails) {
  const auto result = run({});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.out.find("usage: glva"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  EXPECT_EQ(run({"help"}).code, 0);
  EXPECT_EQ(run({"--help"}).code, 0);
}

TEST(Cli, UnknownCommandFails) {
  const auto result = run({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, ListShowsAllFifteenCircuits) {
  const auto result = run({"list"});
  EXPECT_EQ(result.code, 0);
  for (const char* name : {"myers_and", "0x0B", "0x17", "0x80"}) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(Cli, ShowPrintsTruthTable) {
  const auto result = run({"show", "0x0B"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("A B C | GFP"), std::string::npos);
  EXPECT_NE(result.out.find("Cello-style"), std::string::npos);
}

TEST(Cli, ShowUnknownCircuitFails) {
  const auto result = run({"show", "0xFF"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("0xFF"), std::string::npos);
}

TEST(Cli, ExportWritesLoadableSbmlAndSbol) {
  TempPath sbml_path("export.sbml");
  TempPath sbol_path("export.sbol");
  const auto result = run({"export", "0x8", "--sbml", sbml_path.str(),
                           "--sbol", sbol_path.str()});
  EXPECT_EQ(result.code, 0);
  const auto model = glva::sbml::read_sbml_file(sbml_path.str());
  EXPECT_EQ(model.species.size(), 5u);
  const auto design = glva::sbol::read_design_file(sbol_path.str());
  EXPECT_NO_THROW(design.check());
}

TEST(Cli, ExportWithoutTargetsIsUsageError) {
  EXPECT_EQ(run({"export", "0x8"}).code, 2);
}

TEST(Cli, ExportSbolOfMyersCircuitExplainsRefusal) {
  TempPath path("myers.sbol");
  const auto result = run({"export", "myers_and", "--sbol", path.str()});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("behavioural"), std::string::npos);
}

TEST(Cli, VerifyCatalogCircuitSucceeds) {
  const auto result = run({"verify", "0x1C", "--total-time", "10000"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("MATCH"), std::string::npos);
  EXPECT_NE(result.out.find("fitness"), std::string::npos);
}

TEST(Cli, VerifyAtBadThresholdFailsWithWrongStates) {
  const auto result = run({"verify", "0x0B", "--threshold", "3"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.out.find("wrong state"), std::string::npos);
}

TEST(Cli, AnalyzeExportedModelRoundTrips) {
  TempPath sbml_path("analyze.sbml");
  ASSERT_EQ(run({"export", "0xE", "--sbml", sbml_path.str()}).code, 0);
  // 0xE is OR: expected bits {01,10,11} = 0b1110 = 0xE (the catalog pun).
  const auto result =
      run({"analyze", sbml_path.str(), "--inputs", "A,B", "--output", "GFP",
           "--expected", "0xE"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("MATCH"), std::string::npos);
}

TEST(Cli, AnalyzeRequiresInputs) {
  TempPath sbml_path("noinputs.sbml");
  ASSERT_EQ(run({"export", "0xE", "--sbml", sbml_path.str()}).code, 0);
  const auto result = run({"analyze", sbml_path.str()});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--inputs"), std::string::npos);
}

TEST(Cli, AnalyzeWritesCsv) {
  TempPath sbml_path("csv.sbml");
  TempPath csv_path("analytics.csv");
  ASSERT_EQ(run({"export", "0x1", "--sbml", sbml_path.str()}).code, 0);
  const auto result = run({"analyze", sbml_path.str(), "--inputs", "A,B",
                           "--csv", csv_path.str()});
  EXPECT_EQ(result.code, 0);
  std::ifstream csv(csv_path.str());
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find("case,case_count"), std::string::npos);
}

TEST(Cli, VerifyWithDigitizeSinkMatchesMemorySink) {
  const auto memory =
      run({"verify", "myers_and", "--total-time", "600", "--seed", "4"});
  const auto digitize = run({"verify", "myers_and", "--total-time", "600",
                             "--seed", "4", "--sink", "digitize"});
  EXPECT_EQ(memory.code, digitize.code);
  // The analytics table and verdict are identical; only timing lines (and
  // the sink's storage strategy) differ.
  EXPECT_EQ(memory.out.substr(0, memory.out.find("timing:")),
            digitize.out.substr(0, digitize.out.find("timing:")));
}

TEST(Cli, SpillSinkWithoutDirIsUsageError) {
  const auto result =
      run({"verify", "myers_not", "--total-time", "100", "--sink", "spill"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--spill-dir"), std::string::npos);
}

TEST(Cli, UnknownSinkIsUsageError) {
  const auto result =
      run({"verify", "myers_not", "--total-time", "100", "--sink", "tape"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("mem | spill | digitize"), std::string::npos);
}

TEST(Cli, EnsembleFailureLeavesNoPartialAnalyticsCsv) {
  // The analytics CSV streams into a temp file renamed onto --csv only
  // after a successful run: a replicate failure (unwritable spill
  // directory) must leave no half-fleet CSV behind — and must not
  // destroy a result file from an earlier successful run.
  TempPath csv_path("ensemble_partial.csv");
  TempPath temp_path("ensemble_partial.csv.partial");
  {
    std::ofstream previous(csv_path.str(), std::ios::binary);
    previous << "previous successful result\n";
  }
  const auto result =
      run({"ensemble", "0x1", "--replicates", "2", "--total-time", "200",
           "--csv", csv_path.str(), "--sink", "spill", "--spill-dir",
           "/proc/glva-nonexistent/spill"});
  EXPECT_EQ(result.code, 2);
  EXPECT_FALSE(std::filesystem::exists(temp_path.str()));
  std::ifstream survivor(csv_path.str(), std::ios::binary);
  std::string first_line;
  ASSERT_TRUE(std::getline(survivor, first_line));
  EXPECT_EQ(first_line, "previous successful result");
}

TEST(Cli, EnsembleWritesConfidenceCsv) {
  TempPath ci_path("ensemble_ci.csv");
  const auto result =
      run({"ensemble", "0x1", "--replicates", "3", "--total-time", "400",
           "--seed", "42", "--ci-csv", ci_path.str()});
  EXPECT_NE(result.out.find("95% normal CI"), std::string::npos);
  std::ifstream csv(ci_path.str());
  std::string header;
  ASSERT_TRUE(std::getline(csv, header));
  EXPECT_NE(header.find("metric,mean,stddev,ci95_low,ci95_high"),
            std::string::npos);
  std::string row;
  ASSERT_TRUE(std::getline(csv, row));
  EXPECT_NE(row.find("pfobe_percent"), std::string::npos);
}

TEST(Cli, EstimatePrintsThresholdAndDelay) {
  const auto result = run({"estimate", "myers_not", "--total-time", "6000"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("threshold estimate"), std::string::npos);
  EXPECT_NE(result.out.find("recommended hold"), std::string::npos);
}

TEST(Cli, SimdFlagForcesScalarKernelsAndMatchesDefault) {
  // Restore the process-wide dispatch level on exit so later tests see
  // the host default again (every tier is bit-identical, but the guard
  // keeps this test order-independent).
  const auto saved = glva::logic::simd::active_level();
  const auto baseline =
      run({"verify", "myers_not", "--total-time", "200", "--seed", "4"});
  const auto scalar = run({"verify", "myers_not", "--total-time", "200",
                           "--seed", "4", "--simd", "scalar"});
  glva::logic::simd::set_active(saved);
  EXPECT_EQ(scalar.code, baseline.code);
  EXPECT_EQ(scalar.out.substr(0, scalar.out.find("timing:")),
            baseline.out.substr(0, baseline.out.find("timing:")));
}

TEST(Cli, UnknownSimdLevelIsUsageError) {
  const auto result =
      run({"verify", "myers_not", "--total-time", "100", "--simd", "avx1024"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown SIMD level"), std::string::npos);
}

TEST(Cli, MissingSubcommandArgumentIsUsageError) {
  for (const char* command : {"show", "export", "analyze", "verify",
                              "estimate"}) {
    const auto result = run({command});
    EXPECT_EQ(result.code, 2) << command;
  }
}

}  // namespace
