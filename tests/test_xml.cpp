// Unit tests for glva_xml: node model, parser, writer, round trips.

#include <gtest/gtest.h>

#include "util/errors.h"
#include "xml/xml_node.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

using namespace glva::xml;

TEST(XmlNode, ElementAttributesAndChildren) {
  auto root = XmlNode::element("root");
  root->set_attribute("id", "x");
  root->set_attribute("id", "y");  // overwrite, not duplicate
  EXPECT_EQ(root->attribute("id").value(), "y");
  EXPECT_EQ(root->attributes().size(), 1u);
  EXPECT_FALSE(root->attribute("missing").has_value());
  EXPECT_THROW((void)root->required_attribute("missing"), glva::ParseError);

  root->add_element("child").set_attribute("n", "1");
  root->add_element("child");
  root->add_element("other");
  EXPECT_EQ(root->find_children("child").size(), 2u);
  EXPECT_EQ(root->element_children().size(), 3u);
  EXPECT_NE(root->find_child("other"), nullptr);
  EXPECT_EQ(root->find_child("nope"), nullptr);
  EXPECT_THROW((void)root->required_child("nope"), glva::ParseError);
}

TEST(XmlNode, TextContentConcatenatesAndTrims) {
  auto node = XmlNode::element("ci");
  node->add_text("  GFP");
  node->add_text("  ");
  EXPECT_EQ(node->text_content(), "GFP");
}

TEST(XmlNode, CloneIsDeep) {
  auto root = XmlNode::element("a");
  root->add_element("b").add_text("t");
  auto copy = root->clone();
  root->add_element("c");
  EXPECT_EQ(copy->element_children().size(), 1u);
  EXPECT_EQ(root->element_children().size(), 2u);
}

TEST(XmlParser, ParsesNestedDocumentWithDeclaration) {
  const auto root = parse_document(
      "<?xml version=\"1.0\"?>\n<a x=\"1\"><b>text</b><c/></a>");
  EXPECT_EQ(root->name(), "a");
  EXPECT_EQ(root->attribute("x").value(), "1");
  EXPECT_EQ(root->required_child("b").text_content(), "text");
  EXPECT_NE(root->find_child("c"), nullptr);
}

TEST(XmlParser, SingleAndDoubleQuotedAttributes) {
  const auto root = parse_document("<a x='v1' y=\"v2\"/>");
  EXPECT_EQ(root->attribute("x").value(), "v1");
  EXPECT_EQ(root->attribute("y").value(), "v2");
}

TEST(XmlParser, DecodesEntities) {
  const auto root =
      parse_document("<a t=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;</a>");
  EXPECT_EQ(root->attribute("t").value(), "<>&\"'");
  EXPECT_EQ(root->text_content(), "AB");
}

TEST(XmlParser, DecodesMultibyteCharacterReferences) {
  const auto root = parse_document("<a>&#955;</a>");  // lambda, U+03BB
  EXPECT_EQ(root->text_content(), "\xCE\xBB");
}

TEST(XmlParser, CdataIsLiteral) {
  const auto root = parse_document("<a><![CDATA[<not&parsed>]]></a>");
  EXPECT_EQ(root->text_content(), "<not&parsed>");
}

TEST(XmlParser, CommentsArePreservedInTree) {
  const auto root = parse_document("<a><!-- note --><b/></a>");
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->kind(), XmlNode::Kind::kComment);
}

TEST(XmlParser, SkipsProcessingInstructionsAndDoctype) {
  const auto root = parse_document(
      "<?xml version=\"1.0\"?><!DOCTYPE sbml><?pi data?><a/>");
  EXPECT_EQ(root->name(), "a");
}

TEST(XmlParser, WhitespaceBetweenElementsIsLayout) {
  const auto root = parse_document("<a>\n  <b/>\n  <c/>\n</a>");
  EXPECT_EQ(root->children().size(), 2u);
}

TEST(XmlParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_document("<a>\n<b></c>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const glva::ParseError& e) {
    EXPECT_GE(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("mismatched"), std::string::npos);
  }
}

TEST(XmlParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_document(""), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a>"), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a b=1/>"), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a x=\"1\" x=\"2\"/>"), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a/><b/>"), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a>&unknown;</a>"), glva::ParseError);
  EXPECT_THROW((void)parse_document("<a t=\"<\"/>"), glva::ParseError);
}

TEST(XmlWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(escape_text("<a & \"b\">"),
            "&lt;a &amp; &quot;b&quot;&gt;");
}

TEST(XmlWriter, SelfClosesEmptyElements) {
  auto node = XmlNode::element("empty");
  const std::string out = write_document(*node, {true, 2, false});
  EXPECT_EQ(out, "<empty/>\n");
}

TEST(XmlWriter, InlinesTextOnlyElements) {
  auto node = XmlNode::element("ci");
  node->add_text("GFP");
  const std::string out = write_document(*node, {true, 2, false});
  EXPECT_EQ(out, "<ci>GFP</ci>\n");
}

TEST(XmlWriter, RoundTripsThroughParser) {
  const std::string source =
      "<model id=\"m\"><list><item v=\"a&amp;b\">t1</item><item/></list>"
      "</model>";
  const auto tree = parse_document(source);
  const auto reparsed = parse_document(write_document(*tree));
  EXPECT_EQ(reparsed->name(), "model");
  EXPECT_EQ(reparsed->required_child("list").find_children("item").size(), 2u);
  EXPECT_EQ(reparsed->required_child("list")
                .find_children("item")[0]
                ->attribute("v")
                .value(),
            "a&b");
}

TEST(XmlWriter, CompactModeHasNoNewlines) {
  auto root = XmlNode::element("a");
  root->add_element("b");
  WriteOptions options;
  options.pretty = false;
  options.xml_declaration = false;
  EXPECT_EQ(write_document(*root, options), "<a><b/></a>");
}

}  // namespace
