// Compiled with GLVA_NO_METRICS in every build (see CMakeLists.txt): this
// TU exercises the full instrumentation surface against the no-op handles
// so the kill-switch API cannot drift from the real one. It is never
// executed — compiling is the test.

#include <string>

#include "obs/metrics.h"

namespace glva::obs::smoke {

std::string exercise_no_metrics_api(std::uint64_t n) {
  static Counter& c = counter("smoke.counter");
  c.add(n);
  c.increment();

  static Gauge& g = gauge("smoke.gauge");
  g.set(static_cast<std::int64_t>(n));
  g.add(-1);

  static Histogram& h = histogram("smoke.histogram");
  h.observe(static_cast<double>(n));
  {
    const ScopedLatency latency(h);
  }

  static_assert(!metrics_enabled(),
                "this TU must be compiled with GLVA_NO_METRICS");
  const Snapshot snap = snapshot();
  return render_text(snap) + render_json(snap);
}

}  // namespace glva::obs::smoke
