// Tests for the exec/ parallel runtime: ThreadPool exception draining,
// ParallelRunner's ordered-commit determinism contract, SeedSequence
// stream derivation, and the bit-identity of ensemble / threshold-sweep /
// batch results across worker counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "app/commands.h"
#include "circuits/circuit_repository.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/threshold_sweep.h"
#include "exec/parallel_runner.h"
#include "exec/seed_sequence.h"
#include "exec/thread_pool.h"
#include "sim/rng.h"
#include "util/errors.h"

namespace {

using namespace glva;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&counter] { ++counter; });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_GE(exec::ThreadPool::hardware_threads(), 1u);
}

TEST(ThreadPool, ThrowingTaskSurfacesOriginalException) {
  exec::ThreadPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("boom from job"); });
  try {
    future.get();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom from job");
  }
  // The pool is still usable after a failed task.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, DestructionWithQueuedThrowingTasksDoesNotTerminate) {
  std::atomic<int> ran{0};
  {
    exec::ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      (void)pool.submit([&ran] {
        ++ran;
        throw std::runtime_error("dropped");
      });
    }
  }  // futures discarded: exceptions must die with the shared state
  EXPECT_EQ(ran.load(), 8);
}

// -------------------------------------------------------- ParallelRunner

TEST(ParallelRunner, ResolvesJobRequests) {
  EXPECT_GE(exec::resolve_jobs(0), 1u);
  EXPECT_EQ(exec::resolve_jobs(5), 5u);
  EXPECT_EQ(exec::ParallelRunner(0).jobs(), exec::resolve_jobs(0));
  EXPECT_EQ(exec::ParallelRunner(3).jobs(), 3u);
}

TEST(ParallelRunner, MapCommitsInIndexOrder) {
  const exec::ParallelRunner runner(8);
  const auto values = runner.map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(values.size(), 100u);
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], i * i);
}

TEST(ParallelRunner, EmptyAndSingleCounts) {
  const exec::ParallelRunner runner(4);
  EXPECT_TRUE(runner.map<int>(0, [](std::size_t) { return 1; }).empty());
  EXPECT_EQ(runner.map<int>(1, [](std::size_t) { return 7; }).at(0), 7);
}

TEST(ParallelRunner, RethrowsLowestFailedIndex) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const exec::ParallelRunner runner(jobs);
    try {
      runner.for_each_index(8, [](std::size_t i) {
        if (i == 3) throw std::runtime_error("failure at 3");
        if (i == 5) throw std::runtime_error("failure at 5");
      });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failure at 3") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelRunner, DrainsStragglersBeforeThrowing) {
  std::atomic<int> completed{0};
  const exec::ParallelRunner runner(4);
  EXPECT_THROW(runner.for_each_index(16,
                                     [&completed](std::size_t i) {
                                       if (i == 0) {
                                         throw std::runtime_error("early");
                                       }
                                       ++completed;
                                     }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 15);
}

// ------------------------------------------------ ParallelRunner::run_reduce

TEST(RunReduce, CommitsEveryResultInIndexOrderOnTheCallingThread) {
  const auto caller = std::this_thread::get_id();
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    const exec::ParallelRunner runner(jobs);
    std::vector<std::size_t> committed;
    runner.run_reduce<std::size_t>(
        100, [](std::size_t i) { return i * i; },
        [&](std::size_t i, std::size_t&& value) {
          EXPECT_EQ(std::this_thread::get_id(), caller);
          EXPECT_EQ(value, i * i);
          committed.push_back(i);
        });
    ASSERT_EQ(committed.size(), 100u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < committed.size(); ++i) {
      EXPECT_EQ(committed[i], i) << "jobs=" << jobs;
    }
  }
}

TEST(RunReduce, MatchesMapBitForBitAcrossJobCounts) {
  const exec::ParallelRunner serial(1);
  const exec::ParallelRunner parallel(8);
  const auto reference =
      serial.map<std::size_t>(64, [](std::size_t i) { return i * 31 + 7; });
  std::vector<std::size_t> streamed;
  parallel.run_reduce<std::size_t>(
      64, [](std::size_t i) { return i * 31 + 7; },
      [&](std::size_t, std::size_t&& value) { streamed.push_back(value); });
  EXPECT_EQ(streamed, reference);
}

TEST(RunReduce, FailureCommitsThePrefixAndRethrowsTheLowestFailedIndex) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const exec::ParallelRunner runner(jobs);
    std::vector<std::size_t> committed;
    try {
      runner.run_reduce<int>(
          16,
          [](std::size_t i) {
            if (i == 3) throw std::runtime_error("failure at 3");
            if (i == 5) throw std::runtime_error("failure at 5");
            return static_cast<int>(i);
          },
          [&](std::size_t i, int&&) { committed.push_back(i); });
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failure at 3") << "jobs=" << jobs;
    }
    // Commits are exactly the prefix below the lowest failed index.
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1, 2})) << "jobs=" << jobs;
  }
}

TEST(RunReduce, CommitExceptionPropagatesAfterDraining) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const exec::ParallelRunner runner(jobs);
    std::vector<std::size_t> committed;
    try {
      runner.run_reduce<int>(
          12, [](std::size_t i) { return static_cast<int>(i); },
          [&](std::size_t i, int&&) {
            if (i == 2) throw std::runtime_error("commit rejects 2");
            committed.push_back(i);
          });
      FAIL() << "expected the commit's exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "commit rejects 2") << "jobs=" << jobs;
    }
    EXPECT_EQ(committed, (std::vector<std::size_t>{0, 1})) << "jobs=" << jobs;
  }
}

TEST(RunReduce, EmptyCountIsANoOp) {
  const exec::ParallelRunner runner(4);
  runner.run_reduce<int>(
      0, [](std::size_t) { return 1; },
      [](std::size_t, int&&) { FAIL() << "no commits expected"; });
}

// ---------------------------------------------------------- SeedSequence

TEST(SeedSequence, DerivedSeedsAreStableAndDistinct) {
  const exec::SeedSequence seeds(1);
  EXPECT_EQ(seeds.seed_for(7), exec::derive_seed(1, 7));
  EXPECT_EQ(seeds.seed_for(7), seeds.seed_for(7));  // pure function

  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(seeds.seed_for(i));
  EXPECT_EQ(seen.size(), 4096u);  // injective per base (finalizer bijection)

  EXPECT_NE(exec::derive_seed(1, 0), exec::derive_seed(2, 0));
  EXPECT_NE(exec::derive_seed(1, 0), 1u);  // never the raw base seed

  const auto firsts = seeds.first(16);
  ASSERT_EQ(firsts.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(firsts[i], seeds.seed_for(i));
}

// The seed-derivation contract (satellite): streams for adjacent job
// indices are statistically independent, not shifted copies.
TEST(SeedSequence, AdjacentJobStreamsAreUncorrelated) {
  const exec::SeedSequence seeds(42);
  constexpr std::size_t kSamples = 4096;

  // Overlap check: no raw 64-bit output collides between the two streams
  // (expected collisions ~ kSamples^2 / 2^64 ~ 1e-12).
  sim::Rng raw_a = seeds.rng_for(10);
  sim::Rng raw_b = seeds.rng_for(11);
  std::set<std::uint64_t> outputs_a;
  for (std::size_t i = 0; i < kSamples; ++i) outputs_a.insert(raw_a.next_u64());
  std::size_t overlaps = 0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    if (outputs_a.count(raw_b.next_u64()) != 0) ++overlaps;
  }
  EXPECT_EQ(overlaps, 0u);

  // Paired uniform samples from fresh copies of both streams.
  sim::Rng uniform_a = seeds.rng_for(10);
  sim::Rng uniform_b = seeds.rng_for(11);
  std::vector<double> ua, ub;
  for (std::size_t i = 0; i < kSamples; ++i) {
    ua.push_back(uniform_a.uniform());
    ub.push_back(uniform_b.uniform());
  }

  // Chi-square uniformity of each stream: 16 bins, df = 15; 99.9th
  // percentile is ~37.7, so 60 is a generous non-flaky bound.
  const auto chi_square = [](const std::vector<double>& xs) {
    constexpr std::size_t kBins = 16;
    std::vector<std::size_t> bins(kBins, 0);
    for (const double x : xs) {
      ++bins[std::min(kBins - 1, static_cast<std::size_t>(x * kBins))];
    }
    const double expected =
        static_cast<double>(xs.size()) / static_cast<double>(kBins);
    double chi = 0.0;
    for (const std::size_t count : bins) {
      const double d = static_cast<double>(count) - expected;
      chi += d * d / expected;
    }
    return chi;
  };
  EXPECT_LT(chi_square(ua), 60.0);
  EXPECT_LT(chi_square(ub), 60.0);

  // Pearson correlation between the paired streams is near zero.
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    mean_a += ua[i];
    mean_b += ub[i];
  }
  mean_a /= kSamples;
  mean_b /= kSamples;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    cov += (ua[i] - mean_a) * (ub[i] - mean_b);
    var_a += (ua[i] - mean_a) * (ua[i] - mean_a);
    var_b += (ub[i] - mean_b) * (ub[i] - mean_b);
  }
  const double correlation = cov / std::sqrt(var_a * var_b);
  EXPECT_LT(std::abs(correlation), 0.08);
}

// ------------------------------------------------- cross-jobs bit-identity

/// Bit-exact rendering of a double (text formatting could hide ULP drift).
std::string bits_of(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream out;
  out << std::hex << bits;
  return out.str();
}

/// Serialize everything seed-dependent an experiment produced. Trace CSV
/// captures every sample of every species, so any divergence in the
/// simulation itself shows up, not just in the derived analytics.
std::string fingerprint(const core::ExperimentResult& result) {
  std::ostringstream out;
  out << result.circuit_name << '|' << result.config.seed << '|'
      << result.extraction.extracted().to_bits() << '|'
      << bits_of(result.extraction.fitness()) << '|'
      << result.verification.matches << '|'
      << result.verification.wrong_state_count() << '|'
      << result.sweep.trace.to_csv() << '\n';
  return out.str();
}

std::string fingerprint(const core::EnsembleResult& ensemble) {
  std::ostringstream out;
  out << ensemble.circuit_name << '|' << ensemble.replicate_count << '|'
      << ensemble.majority_logic.to_bits() << '|' << ensemble.majority_matches
      << '|' << ensemble.match_count << '\n';
  for (const std::uint64_t seed : ensemble.replicate_seeds) out << seed << ',';
  out << '\n';
  for (const auto& stats : ensemble.combination_stats) {
    out << stats.combination << ':' << stats.high_votes << ':'
        << bits_of(stats.fov_mean) << ':' << bits_of(stats.fov_stddev) << '\n';
  }
  out << bits_of(ensemble.pfobe.mean) << ':' << bits_of(ensemble.pfobe.stddev)
      << ':' << bits_of(ensemble.wrong_states.mean) << '\n';
  return out.str();
}

/// An ensemble run plus the fingerprint of every replicate, captured from
/// the ordered commit stream (run_ensemble no longer materializes the
/// replicates, so the observer is where per-replicate bits are seen).
struct FingerprintedEnsemble {
  core::EnsembleResult ensemble;
  std::vector<std::string> replicates;
};

FingerprintedEnsemble run_fingerprinted_ensemble(
    const circuits::CircuitSpec& spec, const core::ExperimentConfig& config,
    std::size_t replicates, std::size_t jobs) {
  FingerprintedEnsemble run;
  run.replicates.resize(replicates);
  std::size_t commits = 0;
  run.ensemble = core::run_ensemble(
      spec, config, replicates, jobs,
      [&](std::size_t r, const core::ExperimentResult& result) {
        EXPECT_EQ(r, commits) << "observer must see replicates in index order";
        ++commits;
        run.replicates[r] = fingerprint(result);
      });
  EXPECT_EQ(commits, replicates);
  return run;
}

core::ExperimentConfig fast_config() {
  core::ExperimentConfig config;
  config.total_time = 400.0;
  config.seed = 99;
  return config;
}

TEST(Determinism, EnsembleIsBitIdenticalAcrossJobCounts) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  const auto serial = run_fingerprinted_ensemble(spec, fast_config(), 5, 1);
  const auto parallel = run_fingerprinted_ensemble(spec, fast_config(), 5, 8);
  EXPECT_EQ(fingerprint(serial.ensemble), fingerprint(parallel.ensemble));
  // Every replicate — full trace CSV included — is bit-identical whatever
  // the worker count, replicate by replicate.
  EXPECT_EQ(serial.replicates, parallel.replicates);
  // Replicates genuinely differ from one another (derived streams, not a
  // replayed base seed).
  EXPECT_NE(serial.replicates[0], serial.replicates[1]);
}

TEST(Determinism, ThresholdSweepIsBitIdenticalAcrossJobCounts) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  const std::vector<double> thresholds{5.0, 15.0, 30.0};
  const auto serial = core::threshold_sweep(spec, fast_config(), thresholds, 1);
  const auto parallel =
      core::threshold_sweep(spec, fast_config(), thresholds, 4);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].threshold, parallel.points[i].threshold);
    EXPECT_EQ(fingerprint(serial.points[i].result),
              fingerprint(parallel.points[i].result))
        << "threshold point " << i;
  }
}

TEST(Determinism, BatchIsBitIdenticalAcrossJobCountsAndKeepsSpecOrder) {
  const std::vector<circuits::CircuitSpec> specs{
      circuits::CircuitRepository::build("0x1"),
      circuits::CircuitRepository::build("0x6"),
      circuits::CircuitRepository::build("0x8"),
  };
  const auto serial = core::run_batch(specs, fast_config(), 1);
  const auto parallel = core::run_batch(specs, fast_config(), 4);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(serial[i].circuit_name, specs[i].name);
    EXPECT_EQ(fingerprint(serial[i]), fingerprint(parallel[i])) << specs[i].name;
  }
}

TEST(Ensemble, RejectsZeroReplicates) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  EXPECT_THROW((void)core::run_ensemble(spec, fast_config(), 0, 1),
               InvalidArgument);
}

TEST(Ensemble, MajorityVoteRecoversIntendedLogic) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  core::ExperimentConfig config;
  config.total_time = 4000.0;
  const auto ensemble = core::run_ensemble(spec, config, 3, 0);
  EXPECT_TRUE(ensemble.majority_matches);
  EXPECT_EQ(ensemble.majority_logic.to_bits(), spec.expected.to_bits());
  EXPECT_EQ(ensemble.replicate_matches.size(), 3u);
  const auto summary = core::render_ensemble_summary(ensemble);
  EXPECT_NE(summary.find("majority verify: MATCH"), std::string::npos);
}

// ------------------------------------------------------------------ CLI

TEST(Cli, EnsembleOutputIsIdenticalAcrossJobsFlag) {
  const std::vector<std::string> base{"ensemble", "0x1", "--replicates", "3",
                                      "--total-time", "400", "--seed", "7"};
  std::ostringstream out1, err1, out8, err8;
  std::vector<std::string> serial = base;
  serial.insert(serial.end(), {"--jobs", "1"});
  std::vector<std::string> parallel = base;
  parallel.insert(parallel.end(), {"--jobs=8"});
  const int code1 = app::run_cli(serial, out1, err1);
  const int code8 = app::run_cli(parallel, out8, err8);
  EXPECT_EQ(code1, code8);
  EXPECT_EQ(out1.str(), out8.str());
  EXPECT_NE(out1.str().find("majority logic"), std::string::npos);
}

TEST(Cli, JobsFlagRejectsGarbage) {
  for (const std::string bad : {"many", "-4", "4x", ""}) {
    std::ostringstream out, err;
    EXPECT_EQ(app::run_cli({"list", "--jobs", bad}, out, err), 2) << bad;
    EXPECT_NE(err.str().find("--jobs"), std::string::npos) << bad;
  }
  std::ostringstream out, err;
  EXPECT_EQ(app::run_cli({"list", "--jobs"}, out, err), 2);
}

}  // namespace
