// Unit tests for glva_circuits: the 15-circuit repository (structure and
// intended functions; dynamics are covered by test_integration).

#include <gtest/gtest.h>

#include <set>

#include "circuits/cello_circuits.h"
#include "circuits/circuit_repository.h"
#include "circuits/myers_circuits.h"
#include "sbml/validate.h"
#include "util/errors.h"

namespace {

using namespace glva;
using circuits::CircuitRepository;

TEST(Repository, HasFifteenCircuits) {
  const auto names = CircuitRepository::names();
  EXPECT_EQ(names.size(), 15u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(), 15u);
}

TEST(Repository, PaperStructureRanges) {
  // "1 to 3-inputs genetic logic circuits, which are composed of 1-7
  // genetic logic gates" — our catalog must stay inside those ranges.
  bool has_one_input = false;
  bool has_three_inputs = false;
  bool has_seven_gates = false;
  for (const auto& spec : CircuitRepository::build_all()) {
    EXPECT_GE(spec.input_ids.size(), 1u) << spec.name;
    EXPECT_LE(spec.input_ids.size(), 3u) << spec.name;
    EXPECT_GE(spec.gate_count, 1u) << spec.name;
    EXPECT_LE(spec.gate_count, 7u) << spec.name;
    EXPECT_GE(spec.parts.total(), 3u) << spec.name;
    has_one_input |= spec.input_ids.size() == 1;
    has_three_inputs |= spec.input_ids.size() == 3;
    has_seven_gates |= spec.gate_count == 7;
  }
  EXPECT_TRUE(has_one_input);
  EXPECT_TRUE(has_three_inputs);
  EXPECT_TRUE(has_seven_gates);
}

TEST(Repository, AllModelsValidate) {
  for (const auto& spec : CircuitRepository::build_all()) {
    EXPECT_TRUE(sbml::is_valid(sbml::validate(spec.model))) << spec.name;
    EXPECT_NE(spec.model.find_species(spec.output_id), nullptr) << spec.name;
    for (const auto& input : spec.input_ids) {
      EXPECT_NE(spec.model.find_species(input), nullptr)
          << spec.name << "/" << input;
    }
  }
}

TEST(Repository, ExpectedFunctionsMatchCatalog) {
  using logic::TruthTable;
  const auto expect = [](const char* name, const TruthTable& table) {
    EXPECT_EQ(CircuitRepository::build(name).expected, table) << name;
  };
  expect("myers_not", TruthTable::not_gate());
  expect("myers_and", TruthTable::and_gate(2));
  expect("myers_nand", TruthTable::nand_gate(2));
  expect("myers_or", TruthTable::or_gate(2));
  expect("myers_nor", TruthTable::nor_gate(2));
  expect("0x1", TruthTable::nor_gate(2));
  expect("0x6", TruthTable::xor_gate(2));
  expect("0x8", TruthTable::and_gate(2));
  expect("0xE", TruthTable::or_gate(2));
  expect("0x04", TruthTable::from_minterms(3, {2}));
  expect("0x0B", TruthTable::from_minterms(3, {1, 3, 7}));  // C·(A'+B)
  expect("0x14", TruthTable::from_minterms(3, {2, 4}));     // (A^B)·C'
  expect("0x17", TruthTable::minority(3));
  expect("0x1C", TruthTable::from_minterms(3, {1, 2, 3}));  // A'·(B+C)
  expect("0x80", TruthTable::and_gate(3));
}

TEST(Repository, CelloNetlistsMatchTheirSpecFunctions) {
  for (const auto& name : circuits::cello_circuit_names()) {
    const auto netlist = circuits::cello_netlist(name);
    const auto spec = circuits::build_cello_circuit(name);
    EXPECT_EQ(netlist.ideal_truth_table(), spec.expected) << name;
    EXPECT_EQ(netlist.gate_count(), spec.gate_count) << name;
  }
}

TEST(Repository, PaperBehaviouralConstraintsOn0x0B) {
  // The constraints the DATE paper states for circuit 0x0B (see
  // docs/ARCHITECTURE.md, "The benchmark circuits"):
  // 011 high (its decay tail spills into 100), 100 low, 000 low, 111 high.
  const auto spec = CircuitRepository::build("0x0B");
  EXPECT_TRUE(spec.expected.output(0b011));
  EXPECT_FALSE(spec.expected.output(0b100));
  EXPECT_FALSE(spec.expected.output(0b000));
  EXPECT_TRUE(spec.expected.output(0b111));
}

TEST(Repository, MyersCircuitsUseFigureOneSpecies) {
  const auto spec = CircuitRepository::build("myers_and");
  EXPECT_EQ(spec.input_ids, (std::vector<std::string>{"LacI", "TetR"}));
  EXPECT_EQ(spec.output_id, "GFP");
  EXPECT_NE(spec.model.find_species("CI"), nullptr);  // the internal gene
  EXPECT_NE(spec.model.find_parameter("P3_K"), nullptr);
}

TEST(Repository, TwoStageVariantDoublesCelloSpecies) {
  const auto reduced = CircuitRepository::build("0x8", false);
  const auto expanded = CircuitRepository::build("0x8", true);
  EXPECT_GT(expanded.model.species.size(), reduced.model.species.size());
  EXPECT_TRUE(sbml::is_valid(sbml::validate(expanded.model)));
}

TEST(Repository, UnknownNameThrows) {
  EXPECT_THROW((void)CircuitRepository::build("0xFF"), InvalidArgument);
  EXPECT_THROW((void)circuits::build_myers_circuit("myers_xor"),
               InvalidArgument);
  EXPECT_THROW((void)circuits::cello_netlist("nope"), InvalidArgument);
}

TEST(Repository, IsMyersClassifiesNames) {
  EXPECT_TRUE(CircuitRepository::is_myers("myers_and"));
  EXPECT_FALSE(CircuitRepository::is_myers("0x0B"));
}

TEST(Repository, InputsAreMsbFirstInSpecOrder) {
  const auto spec = CircuitRepository::build("0x0B");
  EXPECT_EQ(spec.input_ids, (std::vector<std::string>{"A", "B", "C"}));
}

}  // namespace
