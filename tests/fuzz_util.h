#pragma once

// Shared fuzz-vs-naive machinery for the packed-analysis test suites
// (test_bitstream, test_store, test_simd_kernels): seeded generators for
// bool/word/double streams, the naive bit-counting references the
// word-parallel kernels are checked against, and the ragged block
// slicings the streaming tests cut their deliveries into. Header-only so
// each suite stays a single translation unit.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "props/property.h"
#include "sim/rng.h"

namespace glva::testutil {

// ------------------------------------------------------------- generators

/// n independent fair coin flips.
inline std::vector<bool> random_bools(std::size_t n, sim::Rng& rng) {
  std::vector<bool> bits(n);
  for (std::size_t k = 0; k < n; ++k) bits[k] = rng.below(2) == 1;
  return bits;
}

/// n uniformly random 64-bit words (dense bit patterns for word-kernel
/// fuzz; every bit is fair).
inline std::vector<std::uint64_t> random_words(std::size_t n, sim::Rng& rng) {
  std::vector<std::uint64_t> words(n);
  for (std::uint64_t& w : words) w = rng.next_u64();
  return words;
}

/// n doubles straddling `threshold`, salted with every special value a
/// `>= threshold` comparison must classify exactly like the scalar
/// operator: NaN (compares false), ±infinity, ±0.0, the threshold itself
/// and its immediate neighbours. Roughly a third of the samples are
/// specials; the rest are normals centred on the threshold.
inline std::vector<double> special_doubles(std::size_t n, double threshold,
                                           sim::Rng& rng) {
  const double specials[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      0.0,
      -0.0,
      threshold,
      std::nextafter(threshold, std::numeric_limits<double>::infinity()),
      std::nextafter(threshold, -std::numeric_limits<double>::infinity()),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
  };
  constexpr std::size_t kSpecialCount = sizeof(specials) / sizeof(specials[0]);
  std::vector<double> values(n);
  for (double& v : values) {
    v = rng.below(3) == 0 ? specials[rng.below(kSpecialCount)]
                          : threshold + rng.normal() * 10.0;
  }
  return values;
}

/// A random property AST of at most `depth` operator levels over the
/// given atom names — the differential-fuzz driver for test_props. Every
/// operator kind is reachable; window bounds are drawn from 0..129 so
/// bounded windows regularly straddle 64-bit word boundaries.
inline props::PropertyPtr random_property(std::size_t depth,
                                          const std::vector<std::string>& atoms,
                                          sim::Rng& rng) {
  if (depth == 0 || rng.below(5) == 0) {
    return props::make_atom(atoms[rng.below(atoms.size())]);
  }
  const auto child = [&] { return random_property(depth - 1, atoms, rng); };
  const std::size_t bound = rng.below(130);
  switch (rng.below(11)) {
    case 0: return props::make_not(child());
    case 1: return props::make_and(child(), child());
    case 2: return props::make_or(child(), child());
    case 3: return props::make_implies(child(), child());
    case 4: return props::make_globally(child());
    case 5: return props::make_eventually(child());
    case 6: return props::make_globally_bounded(bound, child());
    case 7: return props::make_eventually_bounded(bound, child());
    case 8: return props::make_until_bounded(child(), bound, child());
    case 9: return props::make_settle(bound, child());
    default: return props::make_noglitch(bound, child());
  }
}

// ----------------------------------------------------- naive references

/// Reference popcount over the unpacked representation.
inline std::size_t naive_popcount(const std::vector<bool>& bits) {
  std::size_t count = 0;
  for (const bool b : bits) count += b ? 1 : 0;
  return count;
}

/// Reference adjacent-transition count (the paper's O_Var applied to a
/// whole stream).
inline std::size_t naive_transitions(const std::vector<bool>& bits) {
  std::size_t count = 0;
  for (std::size_t k = 1; k < bits.size(); ++k) {
    if (bits[k] != bits[k - 1]) ++count;
  }
  return count;
}

/// Reference masked transition count — the CaseAnalyzer semantics:
/// compact the stream to the selected samples, then count adjacent
/// differences.
inline std::size_t naive_masked_transitions(const std::vector<bool>& mask,
                                            const std::vector<bool>& stream) {
  std::vector<bool> compacted;
  for (std::size_t k = 0; k < mask.size(); ++k) {
    if (mask[k]) compacted.push_back(stream[k]);
  }
  return naive_transitions(compacted);
}

// ------------------------------------------------------- ragged slicing

/// The block sizes streaming fuzz cuts deliveries into: single rows,
/// one-off-word boundaries, exact words, a whole chunk, and a ragged
/// cycle. Shared by the sink block-path tests and the SIMD batch tests.
inline const std::vector<std::vector<std::size_t>>& block_slicings() {
  static const std::vector<std::vector<std::size_t>> kSlicings = {
      {1}, {63}, {64}, {65}, {4096}, {1, 7, 64, 65, 3, 256, 31}};
  return kSlicings;
}

/// Cut `total` items into consecutive block lengths cycling through
/// `cycle` (the final block is whatever remains). The returned lengths
/// sum to exactly `total`.
inline std::vector<std::size_t> ragged_slices(
    std::size_t total, const std::vector<std::size_t>& cycle) {
  std::vector<std::size_t> slices;
  std::size_t offset = 0;
  std::size_t next = 0;
  while (offset < total) {
    const std::size_t count =
        std::min(cycle[next % cycle.size()], total - offset);
    slices.push_back(count);
    offset += count;
    ++next;
  }
  return slices;
}

}  // namespace glva::testutil
