// Unit tests for glva_sbml: model building, reading, writing, validation.

#include <gtest/gtest.h>

#include "math/expr.h"
#include "sbml/model.h"
#include "sbml/reader.h"
#include "sbml/validate.h"
#include "sbml/writer.h"
#include "util/errors.h"

namespace {

using namespace glva::sbml;

Model small_model() {
  Model m;
  m.id = "m1";
  m.add_compartment("cell");
  m.add_species("In", 0.0, /*boundary=*/true);
  m.add_species("Out", 0.0);
  m.add_parameter("k", 0.5);
  m.add_reaction("prod", {}, {{"Out", 1.0}}, "k * (1 - hill(In, 8, 2))",
                 {ModifierReference{"In"}});
  m.add_reaction("deg", {{"Out", 1.0}}, {}, "0.01 * Out");
  return m;
}

TEST(Model, BuildersWireLookups) {
  const Model m = small_model();
  EXPECT_NE(m.find_species("Out"), nullptr);
  EXPECT_EQ(m.find_species("Nope"), nullptr);
  EXPECT_NE(m.find_parameter("k"), nullptr);
  EXPECT_NE(m.find_reaction("deg"), nullptr);
  EXPECT_NE(m.find_compartment("cell"), nullptr);
  EXPECT_EQ(m.boundary_species_ids(), (std::vector<std::string>{"In"}));
}

TEST(Model, AddSpeciesRequiresCompartment) {
  Model m;
  EXPECT_THROW((void)m.add_species("X", 0.0), glva::InvalidArgument);
}

TEST(Model, AddReactionParsesKineticLaw) {
  Model m;
  m.add_compartment("cell");
  m.add_species("X", 1.0);
  EXPECT_THROW(
      (void)m.add_reaction("r", {}, {{"X", 1.0}}, "1 +"), glva::ParseError);
}

TEST(Validate, AcceptsWellFormedModel) {
  const auto issues = validate(small_model());
  EXPECT_TRUE(is_valid(issues));
}

TEST(Validate, RejectsMissingCompartment) {
  Model m;
  m.id = "bad";
  const auto issues = validate(m);
  EXPECT_FALSE(is_valid(issues));
}

TEST(Validate, RejectsDuplicateIdsAcrossNamespaces) {
  Model m = small_model();
  m.add_parameter("Out", 1.0);  // collides with the species id
  EXPECT_FALSE(is_valid(validate(m)));
}

TEST(Validate, RejectsUnknownReferences) {
  Model m = small_model();
  m.reactions[0].products[0].species = "Ghost";
  EXPECT_FALSE(is_valid(validate(m)));

  Model m2 = small_model();
  m2.species[0].compartment = "nowhere";
  EXPECT_FALSE(is_valid(validate(m2)));

  Model m3 = small_model();
  m3.reactions[0].kinetic_law.math = glva::math::Expr::symbol("ghost_k");
  EXPECT_FALSE(is_valid(validate(m3)));
}

TEST(Validate, RejectsReversibleReactions) {
  Model m = small_model();
  m.reactions[0].reversible = true;
  EXPECT_FALSE(is_valid(validate(m)));
}

TEST(Validate, RejectsBadStoichiometryAndAmounts) {
  Model m = small_model();
  m.reactions[1].reactants[0].stoichiometry = -1.0;
  EXPECT_FALSE(is_valid(validate(m)));

  Model m2 = small_model();
  m2.reactions[1].reactants[0].stoichiometry = 0.5;
  EXPECT_FALSE(is_valid(validate(m2)));

  Model m3 = small_model();
  m3.species[1].initial_amount = -2.0;
  EXPECT_FALSE(is_valid(validate(m3)));
}

TEST(Validate, RejectsInvalidSids) {
  Model m = small_model();
  m.species[1].id = "9bad";
  EXPECT_FALSE(is_valid(validate(m)));
}

TEST(Validate, LocalParametersShadowAndMustBeUnique) {
  Model m = small_model();
  m.reactions[0].kinetic_law.local_parameters.push_back({"local", 1.0, true});
  m.reactions[0].kinetic_law.local_parameters.push_back({"local", 2.0, true});
  EXPECT_FALSE(is_valid(validate(m)));
}

TEST(Validate, WarnsOnUnusedSpecies) {
  Model m = small_model();
  m.add_species("Orphan", 3.0);
  const auto issues = validate(m);
  EXPECT_TRUE(is_valid(issues));  // warnings only
  bool warned = false;
  for (const auto& issue : issues) {
    warned |= issue.severity == ValidationIssue::Severity::kWarning &&
              issue.message.find("Orphan") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Validate, WarnsWhenLawIgnoresReactants) {
  Model m = small_model();
  // A degradation whose law does not mention its reactant.
  m.add_parameter("c", 1.0);
  m.reactions[1].kinetic_law.math = glva::math::Expr::symbol("c");
  const auto issues = validate(m);
  EXPECT_TRUE(is_valid(issues));
  bool warned = false;
  for (const auto& issue : issues) {
    warned |= issue.message.find("ignores all of its reactants") !=
              std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(Validate, OrThrowListsEveryError) {
  Model m = small_model();
  m.reactions[0].reversible = true;
  m.species[1].initial_amount = -1.0;
  try {
    (void)validate_or_throw(m);
    FAIL() << "expected ValidationError";
  } catch (const glva::ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reversible"), std::string::npos);
    EXPECT_NE(what.find("negative initial amount"), std::string::npos);
  }
}

TEST(ReadWrite, RoundTripsModelStructure) {
  const Model original = small_model();
  const Model reloaded = read_sbml(write_sbml(original));

  EXPECT_EQ(reloaded.id, original.id);
  ASSERT_EQ(reloaded.species.size(), original.species.size());
  EXPECT_EQ(reloaded.species[0].id, "In");
  EXPECT_TRUE(reloaded.species[0].boundary_condition);
  EXPECT_FALSE(reloaded.species[1].boundary_condition);
  ASSERT_EQ(reloaded.parameters.size(), 1u);
  EXPECT_DOUBLE_EQ(reloaded.parameters[0].value, 0.5);
  ASSERT_EQ(reloaded.reactions.size(), 2u);
  ASSERT_EQ(reloaded.reactions[0].modifiers.size(), 1u);
  EXPECT_EQ(reloaded.reactions[0].modifiers[0].species, "In");
  EXPECT_TRUE(is_valid(validate(reloaded)));
}

TEST(ReadWrite, KineticLawsSurviveByValue) {
  const Model original = small_model();
  const Model reloaded = read_sbml(write_sbml(original));
  const glva::math::Environment env{{"In", 12.0}, {"Out", 5.0}, {"k", 0.5},
                                    {"cell", 1.0}};
  for (std::size_t r = 0; r < original.reactions.size(); ++r) {
    EXPECT_NEAR(
        glva::math::evaluate(*original.reactions[r].kinetic_law.math, env),
        glva::math::evaluate(*reloaded.reactions[r].kinetic_law.math, env),
        1e-12);
  }
}

TEST(ReadWrite, LocalParametersRoundTrip) {
  Model m = small_model();
  m.reactions[0].kinetic_law.local_parameters.push_back({"boost", 3.0, true});
  const Model reloaded = read_sbml(write_sbml(m));
  ASSERT_EQ(reloaded.reactions[0].kinetic_law.local_parameters.size(), 1u);
  EXPECT_DOUBLE_EQ(
      reloaded.reactions[0].kinetic_law.local_parameters[0].value, 3.0);
}

TEST(Reader, AppliesSbmlDefaults) {
  const Model m = read_sbml(
      "<sbml><model><listOfCompartments>"
      "<compartment id=\"cell\"/></listOfCompartments>"
      "<listOfSpecies><species id=\"X\" compartment=\"cell\"/>"
      "</listOfSpecies></model></sbml>");
  ASSERT_EQ(m.species.size(), 1u);
  EXPECT_DOUBLE_EQ(m.species[0].initial_amount, 0.0);
  EXPECT_FALSE(m.species[0].boundary_condition);
  EXPECT_DOUBLE_EQ(m.compartments[0].size, 1.0);
}

TEST(Reader, RejectsStructuralProblems) {
  EXPECT_THROW((void)read_sbml("<notsbml/>"), glva::ParseError);
  EXPECT_THROW((void)read_sbml("<sbml/>"), glva::ParseError);
  // Reaction without kinetic law.
  EXPECT_THROW(
      (void)read_sbml("<sbml><model><listOfReactions>"
                      "<reaction id=\"r\"/></listOfReactions></model></sbml>"),
      glva::ParseError);
  // Non-numeric attribute.
  EXPECT_THROW(
      (void)read_sbml("<sbml><model><listOfCompartments>"
                      "<compartment id=\"c\" size=\"big\"/>"
                      "</listOfCompartments></model></sbml>"),
      glva::ParseError);
  // Non-boolean attribute.
  EXPECT_THROW(
      (void)read_sbml("<sbml><model><listOfSpecies>"
                      "<species id=\"s\" compartment=\"c\" "
                      "boundaryCondition=\"maybe\"/>"
                      "</listOfSpecies></model></sbml>"),
      glva::ParseError);
}

TEST(Reader, IgnoresUnknownElements) {
  const Model m = read_sbml(
      "<sbml><model><annotation><stuff/></annotation>"
      "<listOfCompartments><compartment id=\"cell\"/>"
      "</listOfCompartments></model></sbml>");
  EXPECT_EQ(m.compartments.size(), 1u);
}

TEST(Writer, FailsOnMissingKineticLaw) {
  Model m = small_model();
  m.reactions[0].kinetic_law.math = nullptr;
  EXPECT_THROW((void)write_sbml(m), glva::InvalidArgument);
}

}  // namespace
