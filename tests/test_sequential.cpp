// Tests for the sequential/dynamic circuit extensions: the toggle switch
// (state holding) and the repressilator (oscillation), and how the paper's
// algorithm behaves when its combinational assumption breaks.

#include <gtest/gtest.h>

#include "circuits/sequential_circuits.h"
#include "core/logic_analyzer.h"
#include "sbml/validate.h"
#include "sim/virtual_lab.h"
#include "util/stats.h"

namespace {

using namespace glva;

TEST(ToggleSwitch, ModelValidates) {
  const auto model = circuits::toggle_switch_model();
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));
  EXPECT_EQ(model.boundary_species_ids(),
            (std::vector<std::string>{"S_set", "S_reset"}));
}

TEST(ToggleSwitch, HoldsStateWithoutInputs) {
  // Latched on the U side, with no inducers the latch must stay put for a
  // long time (bistability): GFP stays high throughout.
  auto model = circuits::toggle_switch_model();
  sim::VirtualLab lab(model, sim::LabOptions{1.0, 4, sim::SsaMethod::kDirect});
  lab.declare_inputs({"S_set", "S_reset"});
  const auto trace = lab.run_constant({0.0, 0.0}, 5000.0);
  const auto& gfp = trace.series("GFP");
  util::RunningStats tail;
  for (std::size_t k = 1000; k < gfp.size(); ++k) tail.add(gfp[k]);
  EXPECT_GT(tail.mean(), 30.0);
}

TEST(ToggleSwitch, SetPulseFlipsTheLatch) {
  auto model = circuits::toggle_switch_model();
  sim::VirtualLab lab(model, sim::LabOptions{1.0, 5, sim::SsaMethod::kDirect});
  lab.declare_inputs({"S_set", "S_reset"});
  // Pulse S_set for 1500 tu (forces U down), then release and watch.
  sim::InputSchedule schedule(std::vector<std::string>{"S_set", "S_reset"});
  schedule.add_phase(0.0, {15.0, 0.0});
  schedule.add_phase(1500.0, {0.0, 0.0});
  const auto trace = lab.run(schedule, 5000.0);
  const auto& gfp = trace.series("GFP");
  // After release the latch must remain flipped (V side): GFP low.
  util::RunningStats tail;
  for (std::size_t k = 3000; k < gfp.size(); ++k) tail.add(gfp[k]);
  EXPECT_LT(tail.mean(), 10.0);
}

TEST(ToggleSwitch, ExtractionDependsOnSweepOrder) {
  const auto model = circuits::toggle_switch_model();
  const std::vector<std::string> inputs{"S_set", "S_reset"};
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});

  const auto run_order = [&](const std::vector<std::size_t>& order) {
    sim::VirtualLab lab(model, sim::LabOptions{1.0, 6, sim::SsaMethod::kDirect});
    lab.declare_inputs(inputs);
    sim::InputSchedule schedule(inputs);
    const double hold = 10000.0 / static_cast<double>(order.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      schedule.add_phase(static_cast<double>(k) * hold,
                         {(order[k] & 2U) ? 15.0 : 0.0,
                          (order[k] & 1U) ? 15.0 : 0.0});
    }
    const auto trace = lab.run(schedule, 10000.0);
    return analyzer.analyze(trace, inputs, "GFP").extracted();
  };

  // Ascending visits 00 while still initially latched high; visiting 00
  // right after a SET pulse (latch flipped low) reads the opposite.
  const auto ascending = run_order({0, 1, 2, 3});
  const auto after_set = run_order({2, 0, 1, 3});
  EXPECT_TRUE(ascending.output(0));   // 00 high: initial latch state
  EXPECT_FALSE(after_set.output(0));  // 00 low: remembers the SET pulse
}

TEST(Repressilator, ModelValidatesAndOscillates) {
  const auto model = circuits::repressilator_model();
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));

  sim::VirtualLab lab(model, sim::LabOptions{1.0, 7, sim::SsaMethod::kDirect});
  lab.declare_inputs({"dummy_in"});
  const auto trace = lab.run_constant({0.0}, 8000.0);
  const auto& gfp = trace.series("GFP");
  // Oscillation: the signal repeatedly crosses its own long-run mean.
  util::RunningStats stats;
  for (double x : gfp) stats.add(x);
  std::size_t mean_crossings = 0;
  for (std::size_t k = 1; k < gfp.size(); ++k) {
    if ((gfp[k] >= stats.mean()) != (gfp[k - 1] >= stats.mean())) {
      ++mean_crossings;
    }
  }
  EXPECT_GT(mean_crossings, 10u);
  EXPECT_GT(stats.max(), 30.0);
  EXPECT_LT(stats.min(), 5.0);
}

TEST(Repressilator, AnalyzerFlagsNonCombinationalBehaviour) {
  const auto model = circuits::repressilator_model();
  sim::VirtualLab lab(model, sim::LabOptions{1.0, 8, sim::SsaMethod::kDirect});
  lab.declare_inputs({"dummy_in"});
  const auto sweep = lab.run_combination_sweep(10000.0, 15.0);
  const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});
  const auto result = analyzer.analyze(sweep.trace, {"dummy_in"}, "GFP");

  // Either the majority filter rejects the half-duty oscillation, or the
  // stability filter marks it unstable; in both cases no stable high state
  // is extracted and variation counts are large.
  EXPECT_TRUE(result.extracted().minterms().empty());
  std::size_t total_variation = 0;
  for (const auto& record : result.variation.records) {
    total_variation += record.variation_count;
  }
  EXPECT_GT(total_variation, 40u);
}

}  // namespace
