// The temporal-property monitor suite (src/props/): parser round-trips,
// precedence and malformed-input pins for every grammar production, the
// packed monitor fuzzed bit-for-bit against the naive reference evaluator
// (random properties x random/adversarial planes, every available SIMD
// tier), the masked_transition_count gap-at-word-boundary regression the
// monitor counters depend on, and the run_check replicate runner's
// backend- and job-count-independence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "circuits/circuit_repository.h"
#include "core/experiment.h"
#include "fuzz_util.h"
#include "logic/bit_stream.h"
#include "logic/simd/kernel_set.h"
#include "props/check.h"
#include "props/monitor.h"
#include "props/parser.h"
#include "props/property.h"
#include "props/reference.h"
#include "sim/rng.h"
#include "store/spill_reader.h"
#include "util/errors.h"

namespace {

using namespace glva;
using logic::BitStream;
using props::PropertyKind;
using props::PropertyPtr;
using testutil::naive_masked_transitions;
using testutil::random_bools;
using testutil::random_property;

/// Restore the entry state of the SIMD dispatch table around tests that
/// force levels (same guard as test_simd_kernels.cpp).
class ActiveLevelGuard {
public:
  ActiveLevelGuard() : saved_(logic::simd::active_level()) {}
  ~ActiveLevelGuard() { logic::simd::set_active(saved_); }
  ActiveLevelGuard(const ActiveLevelGuard&) = delete;
  ActiveLevelGuard& operator=(const ActiveLevelGuard&) = delete;

private:
  logic::simd::IsaLevel saved_;
};

const std::vector<std::string> kAtomNames = {"A", "B", "C"};

props::NamedPlanes named(std::vector<std::vector<bool>> planes) {
  props::NamedPlanes out;
  out.names = kAtomNames;
  out.names.resize(planes.size());
  out.planes = std::move(planes);
  return out;
}

/// Evaluate `property` with both backends over the same planes and
/// require bit-identical verdicts (including the packed tail invariant).
void expect_backends_agree(const props::Property& property,
                           const props::NamedPlanes& planes,
                           const std::string& context) {
  std::vector<BitStream> packed;
  packed.reserve(planes.planes.size());
  for (const auto& plane : planes.planes) {
    packed.push_back(BitStream::pack(plane));
  }
  props::PackedNamedPlanes packed_planes;
  packed_planes.names = planes.names;
  for (const auto& stream : packed) packed_planes.planes.push_back(&stream);

  const std::vector<bool> expected =
      props::evaluate_reference(property, planes);
  const BitStream actual = props::evaluate_packed(property, packed_planes);
  ASSERT_EQ(actual, BitStream::pack(expected))
      << context << ", property " << props::to_string(property);
}

// ------------------------------------------------------------ the parser

TEST(PropertyParser, RoundTripsCanonicalText) {
  const std::vector<std::string> canonical = {
      "A",
      "!A",
      "A & B & C",
      "A | B & C",
      "A -> B -> C",
      "G A",
      "F (A -> B)",
      "F[0,80] GFP",
      "G[0,0] A",
      "A U[0,5] B U[0,7] C",
      "settle[12] GFP",
      "noglitch[5] GFP",
      "G (C -> F[0,80] GFP) & noglitch[5] GFP",
      "(A | B) U[0,3] C",
      "(A -> B) -> C",
      "!(A & B)",
  };
  for (const std::string& text : canonical) {
    const PropertyPtr parsed = props::parse_property(text);
    EXPECT_EQ(props::to_string(*parsed), text);
    // Parsing the canonical form again yields the same canonical form.
    EXPECT_EQ(props::to_string(*props::parse_property(
                  props::to_string(*parsed))),
              text);
  }
}

TEST(PropertyParser, WhitespaceIsInsignificant) {
  const PropertyPtr spaceless =
      props::parse_property("G(C->F[0,80]GFP)&noglitch[5]GFP");
  const PropertyPtr spaced =
      props::parse_property("  G ( C -> F[0,80]\tGFP ) & noglitch[5] GFP ");
  EXPECT_EQ(props::to_string(*spaceless),
            "G (C -> F[0,80] GFP) & noglitch[5] GFP");
  EXPECT_EQ(props::to_string(*spaceless), props::to_string(*spaced));
}

TEST(PropertyParser, PrecedenceAndAssociativityPins) {
  // -> is right-associative and loosest.
  PropertyPtr p = props::parse_property("A->B->C");
  ASSERT_EQ(p->kind, PropertyKind::kImplies);
  EXPECT_EQ(p->left->kind, PropertyKind::kAtom);
  EXPECT_EQ(p->right->kind, PropertyKind::kImplies);

  // & binds tighter than |, both left-associative.
  p = props::parse_property("A|B&C");
  ASSERT_EQ(p->kind, PropertyKind::kOr);
  EXPECT_EQ(p->right->kind, PropertyKind::kAnd);
  p = props::parse_property("A&B&C");
  ASSERT_EQ(p->kind, PropertyKind::kAnd);
  EXPECT_EQ(p->left->kind, PropertyKind::kAnd);
  EXPECT_EQ(p->right->kind, PropertyKind::kAtom);

  // U[0,k] binds tighter than & and is right-associative. (U and its
  // operands need lexical separation — "AU" is a single identifier.)
  p = props::parse_property("A U[0,2]B U[0,3]C");
  ASSERT_EQ(p->kind, PropertyKind::kUntilBounded);
  EXPECT_EQ(p->bound, 2u);
  ASSERT_EQ(p->right->kind, PropertyKind::kUntilBounded);
  EXPECT_EQ(p->right->bound, 3u);
  p = props::parse_property("A U[0,2]B&C");
  ASSERT_EQ(p->kind, PropertyKind::kAnd);
  EXPECT_EQ(p->left->kind, PropertyKind::kUntilBounded);

  // Prefix operators bind tightest and nest.
  p = props::parse_property("!G A");
  ASSERT_EQ(p->kind, PropertyKind::kNot);
  ASSERT_EQ(p->left->kind, PropertyKind::kGlobally);
  EXPECT_EQ(p->left->left->kind, PropertyKind::kAtom);
  p = props::parse_property("G[0,5]A&B");
  ASSERT_EQ(p->kind, PropertyKind::kAnd);
  EXPECT_EQ(p->left->kind, PropertyKind::kGloballyBounded);
  EXPECT_EQ(p->left->bound, 5u);
}

TEST(PropertyParser, PrinterInsertsMinimalParens) {
  using namespace props;
  const PropertyPtr a = make_atom("A");
  const PropertyPtr b = make_atom("B");
  const PropertyPtr c = make_atom("C");
  EXPECT_EQ(to_string(*make_and(make_or(a, b), c)), "(A | B) & C");
  EXPECT_EQ(to_string(*make_or(make_and(a, b), c)), "A & B | C");
  EXPECT_EQ(to_string(*make_not(make_and(a, b))), "!(A & B)");
  EXPECT_EQ(to_string(*make_globally(make_implies(a, b))), "G (A -> B)");
  EXPECT_EQ(to_string(*make_implies(make_implies(a, b), c)),
            "(A -> B) -> C");
  EXPECT_EQ(to_string(*make_until_bounded(make_or(a, b), 3, c)),
            "(A | B) U[0,3] C");
  EXPECT_EQ(to_string(*make_until_bounded(make_until_bounded(a, 1, b), 2, c)),
            "(A U[0,1] B) U[0,2] C");
  EXPECT_EQ(to_string(*make_and(make_until_bounded(a, 3, b), c)),
            "A U[0,3] B & C");
}

TEST(PropertyParser, FuzzRoundTripParsePrintParse) {
  sim::Rng rng(20260808);
  for (int i = 0; i < 500; ++i) {
    const PropertyPtr p = random_property(4, kAtomNames, rng);
    const std::string text = props::to_string(*p);
    const PropertyPtr reparsed = props::parse_property(text);
    ASSERT_EQ(props::to_string(*reparsed), text) << "iteration " << i;
  }
}

void expect_parse_error(const std::string& text, const std::string& message,
                        std::size_t column) {
  try {
    (void)props::parse_property(text);
    FAIL() << "no ParseError for: " << text;
  } catch (const ParseError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(message), std::string::npos)
        << "input " << text << ": " << what;
    EXPECT_EQ(error.line(), 1u) << "input " << text;
    EXPECT_EQ(error.column(), column) << "input " << text << ": " << what;
  }
}

TEST(PropertyParser, RejectsMalformedInputPerProduction) {
  // Lexer.
  expect_parse_error("A - B", "unexpected character '-' (did you mean '->'?)",
                     3);
  expect_parse_error("A @ B", "unexpected character '@'", 3);
  expect_parse_error("F[0,18446744073709551616] A", "bound out of range", 5);
  // property := or_expr ('->' property)?
  expect_parse_error("A ->", "expected an atom, a prefix operator, or '('",
                     5);
  expect_parse_error("A B", "trailing input after property, starting at 'B'",
                     3);
  // or / and operands.
  expect_parse_error("A |", "expected an atom, a prefix operator, or '('", 4);
  expect_parse_error("A & )", "expected an atom, a prefix operator, or '('",
                     5);
  // until := unary ('U' '[0,k]' until)?
  expect_parse_error("A U B", "'U' requires explicit bounds: p U[0,k] q", 3);
  expect_parse_error("U[0,3] A",
                     "'U' is an infix operator and cannot begin a property",
                     1);
  // unary := ... '(' property ')'
  expect_parse_error("(A", "expected ')' to close '(', got end of input", 3);
  expect_parse_error("", "expected an atom, a prefix operator, or '('", 1);
  expect_parse_error("3", "expected an atom, a prefix operator, or '('", 1);
  // interval := '[' number ',' number ']'
  expect_parse_error("F[,3] A",
                     "expected a number as the interval lower bound, got ','",
                     3);
  expect_parse_error("F[0 3] A",
                     "expected ',' between interval bounds, got '3'", 5);
  expect_parse_error("F[0,] A",
                     "expected a number as the interval upper bound, got ']'",
                     5);
  expect_parse_error("F[0,3) A", "unbalanced bounds: expected ']', got ')'",
                     6);
  expect_parse_error("F[3,1] A", "empty interval [3,1]", 2);
  expect_parse_error("F[1,3] A",
                     "only [0,k] intervals are supported (lower bound must "
                     "be 0)",
                     3);
  // single_bound := '[' number ']'
  expect_parse_error("settle A", "'settle' requires a bound: settle[k]", 1);
  expect_parse_error("noglitch[] A",
                     "expected a number as the 'noglitch' bound, got ']'",
                     10);
  expect_parse_error("settle[3,4] A",
                     "unbalanced bounds: expected ']', got ','", 9);
}

TEST(PropertyAst, CollectAtomsDedupsInAppearanceOrder) {
  const PropertyPtr p =
      props::parse_property("G (C -> F[0,9] A) & C U[0,2] B & A");
  EXPECT_EQ(props::collect_atoms(*p),
            (std::vector<std::string>{"C", "A", "B"}));
  props::validate_atoms(*p, {"A", "B", "C"});
  try {
    props::validate_atoms(*p, {"A", "C"});
    FAIL() << "no InvalidArgument for unknown atom";
  } catch (const InvalidArgument& error) {
    EXPECT_EQ(std::string(error.what()),
              "property: unknown atom 'B' (available planes: A, C)");
  }
}

// -------------------------------------------- evaluators: hand semantics

TEST(PropertyEvaluators, HandComputedOperatorPins) {
  const std::vector<bool> v = {true, true, false, true};
  const std::vector<bool> expected_g = {false, false, false, true};
  const std::vector<bool> expected_f = {true, true, true, true};
  auto planes = named({v});
  const auto eval = [&](const std::string& text,
                        const props::NamedPlanes& on) {
    return props::evaluate_reference(*props::parse_property(text), on);
  };
  EXPECT_EQ(eval("G A", planes), expected_g);
  EXPECT_EQ(eval("F A", planes), expected_f);
  EXPECT_EQ(eval("F A", named({{false, false}})),
            (std::vector<bool>{false, false}));

  // Truncated windows: the window is [j, min(j+k, n-1)].
  EXPECT_EQ(eval("F[0,1] A", named({{false, true, false, false}})),
            (std::vector<bool>{true, true, false, false}));
  EXPECT_EQ(eval("G[0,1] A", planes),
            (std::vector<bool>{true, false, false, true}));

  // p U[0,2] q: q within the window, p strictly before it.
  EXPECT_EQ(eval("A U[0,2] B", named({{true, true, false, false},
                                      {false, false, true, false}})),
            (std::vector<bool>{true, true, true, false}));

  // settle[k]: the signal is at its final value from sample j+k on.
  EXPECT_EQ(eval("settle[0] A", named({{false, true, true, true}})),
            (std::vector<bool>{false, true, true, true}));
  EXPECT_EQ(eval("settle[1] A", named({{false, true, true, true}})),
            (std::vector<bool>{true, true, true, true}));

  // noglitch[k]: interior constant runs shorter than k violate; runs
  // touching either trace boundary are exempt.
  const std::vector<bool> glitchy = {true, false, false, true, true, false};
  EXPECT_EQ(eval("noglitch[2] A", named({glitchy})),
            (std::vector<bool>{true, true, true, true, true, true}));
  EXPECT_EQ(eval("noglitch[3] A", named({glitchy})),
            (std::vector<bool>{true, false, false, false, false, true}));

  // Every pinned case agrees with the packed monitor too.
  for (const char* text :
       {"G A", "F A", "F[0,1] A", "G[0,1] A", "settle[0] A", "settle[1] A",
        "noglitch[2] A", "noglitch[3] A"}) {
    expect_backends_agree(*props::parse_property(text), named({glitchy}),
                          "hand pin");
  }
}

TEST(PropertyEvaluators, RejectUnknownAtomsAndMismatchedLengths) {
  const PropertyPtr p = props::parse_property("A & B");
  props::NamedPlanes planes = named({{true}, {false}});
  EXPECT_THROW((void)props::evaluate_reference(
                   *props::parse_property("A & X"), planes),
               InvalidArgument);
  props::NamedPlanes ragged = planes;
  ragged.planes[1] = {false, true};
  EXPECT_THROW((void)props::evaluate_reference(*p, ragged), InvalidArgument);

  const BitStream a = BitStream::pack({true});
  const BitStream b = BitStream::pack({false, true});
  props::PackedNamedPlanes packed;
  packed.names = {"A", "B"};
  packed.planes = {&a, &b};
  EXPECT_THROW((void)props::evaluate_packed(*p, packed), InvalidArgument);
  packed.planes = {&a, &a};
  EXPECT_THROW((void)props::evaluate_packed(
                   *props::parse_property("A & X"), packed),
               InvalidArgument);
}

// --------------------------------------------------- differential fuzz

/// The adversarial plane families: dense random bits, the degenerate
/// constants, single glitches at the 64-bit word boundaries, and short
/// periodic toggles (every period straddles words eventually).
std::vector<std::vector<std::vector<bool>>> plane_families(std::size_t n,
                                                           sim::Rng& rng) {
  const auto constant = [n](bool value) {
    return std::vector<bool>(n, value);
  };
  const auto glitch_at = [n](std::size_t position) {
    std::vector<bool> plane(n, true);
    if (n != 0) plane[std::min(position, n - 1)] = false;
    return plane;
  };
  const auto period = [n](std::size_t k) {
    std::vector<bool> plane(n);
    for (std::size_t j = 0; j < n; ++j) plane[j] = (j / k) % 2 == 0;
    return plane;
  };
  return {
      {random_bools(n, rng), random_bools(n, rng), random_bools(n, rng)},
      {constant(false), constant(true), random_bools(n, rng)},
      {glitch_at(63), glitch_at(64), glitch_at(65)},
      {period(1), period(3), period(64)},
  };
}

TEST(PropertyDifferentialFuzz, PackedMatchesReferenceOnEveryTier) {
  ActiveLevelGuard guard;
  for (const logic::simd::KernelSet* set :
       logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    sim::Rng rng(0xB16F00D + static_cast<std::uint64_t>(set->level));
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{127},
          std::size_t{128}, std::size_t{129}, std::size_t{1000},
          std::size_t{4097}}) {
      for (const auto& family : plane_families(n, rng)) {
        const props::NamedPlanes planes = named(family);
        for (int rep = 0; rep < 6; ++rep) {
          const PropertyPtr property = random_property(3, kAtomNames, rng);
          expect_backends_agree(
              *property, planes,
              std::string(set->name) + ", n " + std::to_string(n));
          if (HasFatalFailure()) return;
        }
      }
    }
  }
}

// --------------------------- masked_transition_count gap regression

/// The compacted-gap semantics (docs/ANALYSIS.md worked example): when
/// the selection mask skips a stretch, the last selected sample before
/// the gap is compared against the first selected sample after it —
/// exactly what compact-then-count does. Gaps placed at and across
/// 64-bit word boundaries exercise the scalar run-start patch.
TEST(MaskedTransitions, GapAtWordBoundaryMatchesCompactedReference) {
  // The ANALYSIS.md example, verbatim: samples 0..191, word 1 (samples
  // 64..127) deselected, stream = ones on word 0 and zeros after it.
  // Compacted stream: 64 ones then 64 zeros — exactly one transition,
  // and it happens across the gap.
  std::vector<bool> mask(192, true);
  std::vector<bool> stream(192, false);
  for (std::size_t j = 64; j < 128; ++j) mask[j] = false;
  for (std::size_t j = 0; j < 64; ++j) stream[j] = true;
  ASSERT_EQ(naive_masked_transitions(mask, stream), 1u);
  EXPECT_EQ(logic::masked_transition_count(BitStream::pack(mask),
                                           BitStream::pack(stream)),
            1u);

  // Systematic: every gap placement straddling the first word boundary,
  // against streams that toggle at several periods.
  const std::size_t n = 256;
  sim::Rng rng(0x6A9);
  for (const std::size_t gap_start :
       {std::size_t{1}, std::size_t{62}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{126}}) {
    for (const std::size_t gap_length :
         {std::size_t{1}, std::size_t{2}, std::size_t{64}, std::size_t{65},
          std::size_t{130}}) {
      std::vector<bool> gapped(n, true);
      for (std::size_t j = gap_start;
           j < std::min(n, gap_start + gap_length); ++j) {
        gapped[j] = false;
      }
      const std::vector<bool> streams[] = {
          random_bools(n, rng),
          [&] {
            std::vector<bool> toggled(n);
            for (std::size_t j = 0; j < n; ++j) toggled[j] = j % 2 == 0;
            return toggled;
          }(),
          std::vector<bool>(n, true),
      };
      for (const auto& s : streams) {
        EXPECT_EQ(logic::masked_transition_count(BitStream::pack(gapped),
                                                 BitStream::pack(s)),
                  naive_masked_transitions(gapped, s))
            << "gap [" << gap_start << ", " << gap_start + gap_length << ")";
      }
    }
  }
}

// ------------------------------------------------------- the check runner

core::ExperimentConfig small_config() {
  core::ExperimentConfig config;
  config.total_time = 120.0;
  config.sampling_period = 1.0;
  config.seed = 99;
  return config;
}

std::vector<PropertyPtr> small_properties() {
  return {props::parse_property("G (A -> F[0,30] GFP)"),
          props::parse_property("noglitch[3] GFP")};
}

void expect_check_results_equal(const props::CheckResult& a,
                                const props::CheckResult& b) {
  ASSERT_EQ(a.sample_count, b.sample_count);
  ASSERT_EQ(a.replicate_seeds, b.replicate_seeds);
  ASSERT_EQ(a.first.properties.size(), b.first.properties.size());
  for (std::size_t i = 0; i < a.first.properties.size(); ++i) {
    const props::PropertyCheck& pa = a.first.properties[i];
    const props::PropertyCheck& pb = b.first.properties[i];
    EXPECT_EQ(pa.property, pb.property);
    EXPECT_EQ(pa.samples, pb.samples);
    EXPECT_EQ(pa.satisfied, pb.satisfied);
    EXPECT_EQ(pa.first_violation, pb.first_violation);
    ASSERT_EQ(pa.combinations.size(), pb.combinations.size());
    for (std::size_t c = 0; c < pa.combinations.size(); ++c) {
      EXPECT_EQ(pa.combinations[c].samples, pb.combinations[c].samples);
      EXPECT_EQ(pa.combinations[c].satisfied, pb.combinations[c].satisfied);
      EXPECT_EQ(pa.combinations[c].first_violation,
                pb.combinations[c].first_violation);
    }
  }
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (std::size_t i = 0; i < a.properties.size(); ++i) {
    EXPECT_EQ(a.properties[i].fraction.mean, b.properties[i].fraction.mean);
    EXPECT_EQ(a.properties[i].violated_replicates,
              b.properties[i].violated_replicates);
  }
}

TEST(CheckRunner, BackendsAndJobCountsAreBitIdentical) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  const auto properties = small_properties();
  const props::CheckResult packed =
      props::run_check(spec, small_config(), properties, 2, 1);
  EXPECT_EQ(packed.replicate_count, 2u);
  EXPECT_EQ(packed.input_names, spec.input_ids);
  EXPECT_GT(packed.sample_count, 0u);
  EXPECT_EQ(packed.first.properties.size(), properties.size());
  // Per-combination counts partition the per-replicate totals.
  for (const props::PropertyCheck& property : packed.first.properties) {
    std::size_t samples = 0;
    std::size_t satisfied = 0;
    std::size_t first_violation = props::kNoViolation;
    for (const props::CombinationCheck& comb : property.combinations) {
      samples += comb.samples;
      satisfied += comb.satisfied;
      first_violation = std::min(first_violation, comb.first_violation);
    }
    EXPECT_EQ(samples, property.samples);
    EXPECT_EQ(satisfied, property.satisfied);
    EXPECT_EQ(first_violation, property.first_violation);
  }

  core::ExperimentConfig reference_config = small_config();
  reference_config.backend = core::AnalysisBackend::kReference;
  expect_check_results_equal(
      packed, props::run_check(spec, reference_config, properties, 2, 1));
  expect_check_results_equal(
      packed, props::run_check(spec, small_config(), properties, 2, 3));
}

TEST(CheckRunner, SinksAreBitIdenticalAndSpillRunsOutOfCore) {
  // The spill path replays the .glvt straight into the streaming ADC (no
  // trace re-materialization) for the packed backend, and through
  // read_all for the reference backend; all of it must match the memory
  // path bit for bit — same seed, same samples, same verdict words.
  const auto spec = circuits::CircuitRepository::build("0x1");
  const auto properties = small_properties();
  const props::CheckResult memory =
      props::run_check(spec, small_config(), properties, 2, 1);

  core::ExperimentConfig spill_config = small_config();
  spill_config.sink = store::SinkKind::kSpill;
  spill_config.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "check_spill").string();
  expect_check_results_equal(
      memory, props::run_check(spec, spill_config, properties, 2, 2));
  // One .glvt per replicate, so parallel replicates never share a file.
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(spill_config.spill_dir) /
        (spec.name + "-s99-r" + std::to_string(r) + ".glvt")))
        << "replicate " << r;
  }

  spill_config.backend = core::AnalysisBackend::kReference;
  expect_check_results_equal(
      memory, props::run_check(spec, spill_config, properties, 2, 1));

  core::ExperimentConfig digitize_config = small_config();
  digitize_config.sink = store::SinkKind::kDigitize;
  expect_check_results_equal(
      memory, props::run_check(spec, digitize_config, properties, 2, 1));

  // With a spill directory, the digitize sink also tees a per-replicate
  // bit-plane artifact that must open as a readable kBits file.
  digitize_config.spill_dir =
      (std::filesystem::path(::testing::TempDir()) / "check_tee").string();
  expect_check_results_equal(
      memory, props::run_check(spec, digitize_config, properties, 2, 2));
  for (std::size_t r = 0; r < 2; ++r) {
    const auto path = std::filesystem::path(digitize_config.spill_dir) /
                      (spec.name + "-s99-r" + std::to_string(r) + ".glvt");
    ASSERT_TRUE(std::filesystem::exists(path)) << "replicate " << r;
    store::SpillReader reader(path.string());
    EXPECT_EQ(reader.content_kind(), store::glvt::ContentKind::kBits);
    EXPECT_EQ(reader.read_planes().size(), spec.input_ids.size() + 1);
  }
}

TEST(CheckRunner, ObserverSeesEveryReplicateInOrder) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  std::vector<std::size_t> seen;
  const props::CheckResult result = props::run_check(
      spec, small_config(), small_properties(), 3, 2,
      [&](std::size_t replicate, const props::CheckReplicate& detail) {
        seen.push_back(replicate);
        EXPECT_EQ(detail.properties.size(), 2u);
      });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(result.replicate_seeds.size(), 3u);
}

TEST(CheckRunner, RejectsBadArguments) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  const auto properties = small_properties();
  EXPECT_THROW((void)props::run_check(spec, small_config(), properties, 0, 1),
               InvalidArgument);
  EXPECT_THROW((void)props::run_check(spec, small_config(), {}, 1, 1),
               InvalidArgument);
  EXPECT_THROW((void)props::run_check(
                   spec, small_config(),
                   {props::parse_property("G nosuchplane")}, 1, 1),
               InvalidArgument);
  core::ExperimentConfig bad = small_config();
  bad.sink = store::SinkKind::kSpill;  // no spill_dir
  EXPECT_THROW((void)props::run_check(spec, bad, properties, 1, 1),
               InvalidArgument);
}

TEST(CheckRunner, RenderedSummaryIsDeterministic) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  const props::CheckResult result =
      props::run_check(spec, small_config(), small_properties(), 2, 2);
  const std::string a = props::render_check_summary(result, 0.5);
  const std::string b = props::render_check_summary(
      props::run_check(spec, small_config(), small_properties(), 2, 1), 0.5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("replicates: 2"), std::string::npos);
  EXPECT_NE(a.find("verdict:"), std::string::npos);
}

}  // namespace
