// Unit tests for glva_logic: truth tables, SoP expressions, and the
// Quine–McCluskey minimizer.

#include <gtest/gtest.h>

#include "logic/bool_expr.h"
#include "logic/quine_mccluskey.h"
#include "logic/truth_table.h"
#include "util/errors.h"

namespace {

using namespace glva::logic;

// ------------------------------------------------------------ truth table

TEST(TruthTable, ConstructionAndBounds) {
  TruthTable t(3);
  EXPECT_EQ(t.row_count(), 8u);
  EXPECT_FALSE(t.output(0));
  t.set_output(5, true);
  EXPECT_TRUE(t.output(5));
  EXPECT_THROW((void)t.output(8), glva::InvalidArgument);
  EXPECT_THROW(t.set_output(8, true), glva::InvalidArgument);
  EXPECT_THROW(TruthTable(0), glva::InvalidArgument);
  EXPECT_THROW(TruthTable(17), glva::InvalidArgument);
}

TEST(TruthTable, MintermsAndBitsRoundTrip) {
  const auto t = TruthTable::from_minterms(3, {1, 3, 7});
  EXPECT_EQ(t.minterms(), (std::vector<std::size_t>{1, 3, 7}));
  EXPECT_EQ(t.to_bits(), 0b10001010u);
  EXPECT_EQ(TruthTable::from_bits(3, 0b10001010u), t);
}

TEST(TruthTable, CombinationLabelsAreMsbFirst) {
  const TruthTable t(3);
  EXPECT_EQ(t.combination_label(0), "000");
  EXPECT_EQ(t.combination_label(4), "100");  // input 0 (A) is the MSB
  EXPECT_EQ(t.combination_label(3), "011");
}

TEST(TruthTable, StandardGates) {
  EXPECT_EQ(TruthTable::and_gate(2).minterms(), (std::vector<std::size_t>{3}));
  EXPECT_EQ(TruthTable::or_gate(2).minterms(),
            (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(TruthTable::nand_gate(2).minterms(),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(TruthTable::nor_gate(2).minterms(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(TruthTable::xor_gate(2).minterms(),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(TruthTable::xnor_gate(2).minterms(),
            (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(TruthTable::not_gate().minterms(), (std::vector<std::size_t>{0}));
}

TEST(TruthTable, ParityGeneralizes) {
  const auto parity3 = TruthTable::xor_gate(3);
  EXPECT_EQ(parity3.minterms(), (std::vector<std::size_t>{1, 2, 4, 7}));
}

TEST(TruthTable, MajorityAndMinority) {
  EXPECT_EQ(TruthTable::majority(3).minterms(),
            (std::vector<std::size_t>{3, 5, 6, 7}));
  EXPECT_EQ(TruthTable::minority(3).minterms(),
            (std::vector<std::size_t>{0, 1, 2, 4}));
}

TEST(TruthTable, DifferingRowsFindsWrongStates) {
  const auto a = TruthTable::and_gate(2);
  const auto b = TruthTable::xnor_gate(2);
  EXPECT_EQ(a.differing_rows(b), (std::vector<std::size_t>{0}));
  EXPECT_TRUE(a.differing_rows(a).empty());
  const TruthTable three(3);
  EXPECT_THROW((void)a.differing_rows(three), glva::InvalidArgument);
}

TEST(TruthTable, ToStringRendersRows) {
  const auto t = TruthTable::and_gate(2);
  const std::string out = t.to_string({"A", "B"}, "Y");
  EXPECT_NE(out.find("A B | Y"), std::string::npos);
  EXPECT_NE(out.find("1 1 | 1"), std::string::npos);
}

// ------------------------------------------------------------------ cubes

TEST(Cube, CoversMatchesMaskAndPolarity) {
  // Over 3 inputs: cube "A·C'" (vars 0 and 2).
  Cube cube;
  cube.mask = 0b101;      // A and C participate
  cube.polarity = 0b001;  // A=1, C=0
  EXPECT_TRUE(cube.covers(0b100, 3));   // A=1,B=0,C=0
  EXPECT_TRUE(cube.covers(0b110, 3));   // A=1,B=1,C=0
  EXPECT_FALSE(cube.covers(0b101, 3));  // C=1
  EXPECT_FALSE(cube.covers(0b010, 3));  // A=0
  EXPECT_EQ(cube.literal_count(), 2u);
}

TEST(SopExpr, CanonicalMatchesTruthTable) {
  const auto table = TruthTable::xor_gate(2);
  const auto expr = SopExpr::canonical(table, {"A", "B"});
  EXPECT_EQ(expr.cubes().size(), 2u);
  EXPECT_TRUE(expr.equivalent_to(table));
  EXPECT_EQ(expr.to_string(), "A'·B + A·B'");
}

TEST(SopExpr, EmptyAndUniversalRendering) {
  SopExpr empty(2, {"A", "B"});
  EXPECT_EQ(empty.to_string(), "0");
  SopExpr universal(2, {"A", "B"});
  universal.add_cube(Cube{});  // no literals = constant true
  EXPECT_EQ(universal.to_string(), "1");
  EXPECT_TRUE(universal.evaluate(0));
}

TEST(SopExpr, CustomStyle) {
  const auto table = TruthTable::nor_gate(2);
  const auto expr = SopExpr::canonical(table, {"x", "y"});
  ExprStyle style;
  style.and_sep = " AND ";
  style.not_suffix = "_bar";
  EXPECT_EQ(expr.to_string(style), "x_bar AND y_bar");
}

TEST(SopExpr, ValidatesConstruction) {
  EXPECT_THROW(SopExpr(2, {"A"}), glva::InvalidArgument);
  EXPECT_THROW(SopExpr(0, {}), glva::InvalidArgument);
}

// --------------------------------------------------------- Quine–McCluskey

TEST(QuineMcCluskey, MinimizesClassicExamples) {
  // AND stays a single cube.
  EXPECT_EQ(minimize(TruthTable::and_gate(2), {"A", "B"}).to_string(), "A·B");
  // XOR is irreducible: two 2-literal cubes.
  EXPECT_EQ(minimize(TruthTable::xor_gate(2), {"A", "B"}).cubes().size(), 2u);
  // OR of adjacent minterms merges: f = {2,3} over 2 vars = A.
  EXPECT_EQ(minimize(TruthTable::from_minterms(2, {2, 3}), {"A", "B"})
                .to_string(),
            "A");
  // Constant functions.
  EXPECT_EQ(minimize(TruthTable(2), {"A", "B"}).to_string(), "0");
  EXPECT_EQ(
      minimize(TruthTable::from_minterms(1, {0, 1}), {"A"}).to_string(), "1");
}

TEST(QuineMcCluskey, TextbookFourVariableCase) {
  // f(w,x,y,z) = Σm(4,8,10,11,12,15), d(9,14) — the classic example whose
  // minimum is yz' + wx' + w'xy' (with our A..D naming, 3 cubes).
  const auto table = TruthTable::from_minterms(4, {4, 8, 10, 11, 12, 15});
  const auto expr = minimize(table, {"A", "B", "C", "D"}, {9, 14});
  EXPECT_EQ(expr.cubes().size(), 3u);
  // Every required minterm covered, no required zero covered.
  for (std::size_t m : {4u, 8u, 10u, 11u, 12u, 15u}) {
    EXPECT_TRUE(expr.evaluate(m)) << m;
  }
  for (std::size_t m : {0u, 1u, 2u, 3u, 5u, 6u, 7u, 13u}) {
    EXPECT_FALSE(expr.evaluate(m)) << m;
  }
}

TEST(QuineMcCluskey, DontCaresEnlargeCubes) {
  // {1} with don't-care {3} over 2 vars minimizes to B (not A'·B).
  const auto expr =
      minimize(TruthTable::from_minterms(2, {1}), {"A", "B"}, {3});
  EXPECT_EQ(expr.to_string(), "B");
}

TEST(QuineMcCluskey, MinorityMinimizesToThreeCubes) {
  const auto expr = minimize(TruthTable::minority(3), {"A", "B", "C"});
  EXPECT_EQ(expr.cubes().size(), 3u);
  EXPECT_TRUE(expr.equivalent_to(TruthTable::minority(3)));
}

TEST(QuineMcCluskey, PrimeImplicantsOfXorAreItsMinterms) {
  const auto primes = prime_implicants(TruthTable::xor_gate(2));
  EXPECT_EQ(primes.size(), 2u);
  for (const auto& cube : primes) EXPECT_EQ(cube.literal_count(), 2u);
}

TEST(QuineMcCluskey, RejectsOutOfRangeDontCares) {
  EXPECT_THROW(
      (void)minimize(TruthTable(2), {"A", "B"}, {4}), glva::InvalidArgument);
  EXPECT_THROW((void)prime_implicants(TruthTable(2), {9}),
               glva::InvalidArgument);
}

// Exhaustive check: every 2-input function minimizes to an equivalent
// expression (16 functions).
TEST(QuineMcCluskey, AllTwoInputFunctionsRoundTrip) {
  for (std::uint64_t bits = 0; bits < 16; ++bits) {
    const auto table = TruthTable::from_bits(2, bits);
    const auto expr = minimize(table, {"A", "B"});
    EXPECT_TRUE(expr.equivalent_to(table)) << "bits=" << bits;
  }
}

TEST(DefaultInputNames, FollowAlphabet) {
  EXPECT_EQ(default_input_names(3),
            (std::vector<std::string>{"A", "B", "C"}));
}

TEST(DefaultInputNames, NumbersPastTheAlphabet) {
  const auto names = default_input_names(28);
  ASSERT_EQ(names.size(), 28u);
  EXPECT_EQ(names[25], "Z");
  EXPECT_EQ(names[26], "X26");
  EXPECT_EQ(names[27], "X27");
}

}  // namespace
