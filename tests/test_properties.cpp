// Property-based tests: randomized invariants across module boundaries,
// driven by GLVA's own deterministic RNG so failures are reproducible.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adc.h"
#include "core/bool_constructor.h"
#include "core/case_analyzer.h"
#include "core/logic_analyzer.h"
#include "core/variation_analyzer.h"
#include "crn/network.h"
#include "gates/gate_library.h"
#include "gates/netlist.h"
#include "gates/netlist_to_sbml.h"
#include "logic/quine_mccluskey.h"
#include "math/expr.h"
#include "math/expr_parser.h"
#include "math/mathml.h"
#include "sbml/validate.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace glva;

// ----------------------------------------------------- expression algebra --

/// Random expression trees over a fixed symbol set, avoiding domain errors
/// (no ln/sqrt of negatives: all leaves are non-negative, ops closed over
/// non-negatives except minus, which we wrap in abs).
math::ExprPtr random_expr(sim::Rng& rng, int depth) {
  using math::Expr;
  if (depth == 0 || rng.below(4) == 0) {
    if (rng.below(2) == 0) {
      return Expr::number(static_cast<double>(rng.below(20)) * 0.5);
    }
    const char* names[] = {"x", "y", "z"};
    return Expr::symbol(names[rng.below(3)]);
  }
  switch (rng.below(8)) {
    case 0:
      return Expr::add(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 1:
      return Expr::call(math::Function::kAbs,
                        {Expr::sub(random_expr(rng, depth - 1),
                                   random_expr(rng, depth - 1))});
    case 2:
      return Expr::mul(random_expr(rng, depth - 1), random_expr(rng, depth - 1));
    case 3:
      return Expr::div(random_expr(rng, depth - 1),
                       Expr::add(Expr::number(1.0),
                                 random_expr(rng, depth - 1)));
    case 4:
      return Expr::call(math::Function::kHill,
                        {random_expr(rng, depth - 1), Expr::number(8.0),
                         Expr::number(2.0)});
    case 5:
      return Expr::call(math::Function::kMin,
                        {random_expr(rng, depth - 1),
                         random_expr(rng, depth - 1)});
    case 6:
      return Expr::call(math::Function::kMax,
                        {random_expr(rng, depth - 1),
                         random_expr(rng, depth - 1)});
    default:
      return Expr::call(math::Function::kExp,
                        {Expr::negate(random_expr(rng, depth - 1))});
  }
}

TEST(PropertyExpr, CompiledEvaluationMatchesTreeWalk) {
  sim::Rng rng(1001);
  const auto index = [](const std::string& name) -> std::size_t {
    return static_cast<std::size_t>(name[0] - 'x');
  };
  for (int trial = 0; trial < 300; ++trial) {
    const auto expr = random_expr(rng, 4);
    const std::vector<double> values{rng.uniform() * 20.0,
                                     rng.uniform() * 20.0,
                                     rng.uniform() * 20.0};
    const math::Environment env{
        {"x", values[0]}, {"y", values[1]}, {"z", values[2]}};
    const math::CompiledExpr compiled(*expr, index);
    const double walked = math::evaluate(*expr, env);
    const double fast = compiled.evaluate(values);
    ASSERT_NEAR(walked, fast, 1e-9 * (1.0 + std::fabs(walked)))
        << expr->to_string();
  }
}

TEST(PropertyExpr, PrintParseRoundTripPreservesValue) {
  sim::Rng rng(1002);
  const math::Environment env{{"x", 1.5}, {"y", 3.25}, {"z", 0.75}};
  for (int trial = 0; trial < 300; ++trial) {
    const auto expr = random_expr(rng, 4);
    const auto reparsed = math::parse_expression(expr->to_string());
    ASSERT_NEAR(math::evaluate(*expr, env), math::evaluate(*reparsed, env),
                1e-9)
        << expr->to_string();
  }
}

TEST(PropertyExpr, MathMlRoundTripPreservesValue) {
  sim::Rng rng(1003);
  const math::Environment env{{"x", 2.0}, {"y", 0.5}, {"z", 7.0}};
  for (int trial = 0; trial < 200; ++trial) {
    const auto expr = random_expr(rng, 3);
    const auto back = math::from_mathml(*math::to_mathml(*expr));
    ASSERT_NEAR(math::evaluate(*expr, env), math::evaluate(*back, env), 1e-9)
        << expr->to_string();
  }
}

// --------------------------------------------------------- minimization --

class QuineMcCluskeySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(QuineMcCluskeySweep, MinimizedExpressionIsEquivalent) {
  const std::size_t inputs = GetParam();
  sim::Rng rng(2000 + inputs);
  const auto names = logic::default_input_names(inputs);
  for (int trial = 0; trial < 120; ++trial) {
    logic::TruthTable table(inputs);
    for (std::size_t c = 0; c < table.row_count(); ++c) {
      table.set_output(c, rng.below(2) == 1);
    }
    const auto expr = logic::minimize(table, names);
    ASSERT_TRUE(expr.equivalent_to(table))
        << "inputs=" << inputs << " bits=" << table.to_bits();
    // Minimized form never uses more cubes than the canonical SoP.
    ASSERT_LE(expr.cubes().size(), table.minterms().size());
  }
}

TEST_P(QuineMcCluskeySweep, DontCaresNeverFlipRequiredRows) {
  const std::size_t inputs = GetParam();
  sim::Rng rng(3000 + inputs);
  const auto names = logic::default_input_names(inputs);
  for (int trial = 0; trial < 60; ++trial) {
    logic::TruthTable table(inputs);
    std::vector<std::size_t> dont_cares;
    for (std::size_t c = 0; c < table.row_count(); ++c) {
      const auto roll = rng.below(3);
      if (roll == 0) {
        table.set_output(c, true);
      } else if (roll == 2) {
        dont_cares.push_back(c);
      }
    }
    const auto expr = logic::minimize(table, names, dont_cares);
    for (std::size_t c = 0; c < table.row_count(); ++c) {
      const bool is_dc =
          std::find(dont_cares.begin(), dont_cares.end(), c) != dont_cares.end();
      if (is_dc) continue;  // free either way
      ASSERT_EQ(expr.evaluate(c), table.output(c)) << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(InputWidths, QuineMcCluskeySweep,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ------------------------------------------------------------------- ADC --

TEST(PropertyAdc, RaisingThresholdShrinksHighSet) {
  sim::Rng rng(4001);
  std::vector<double> analog(2000);
  for (double& x : analog) x = rng.uniform() * 60.0;
  std::size_t previous_highs = analog.size() + 1;
  for (const double threshold : {1.0, 5.0, 15.0, 30.0, 55.0}) {
    const auto bits = core::adc(analog, threshold);
    std::size_t highs = 0;
    for (const bool b : bits) highs += b ? 1 : 0;
    ASSERT_LT(highs, previous_highs + 1);
    previous_highs = highs;
  }
}

TEST(PropertyAdc, DigitizationIsIdempotentOnDigitalSignals) {
  // A signal already at {0, H} digitizes identically for any threshold in
  // (0, H].
  std::vector<double> analog;
  sim::Rng rng(4002);
  for (int k = 0; k < 500; ++k) analog.push_back(rng.below(2) ? 30.0 : 0.0);
  const auto at_10 = core::adc(analog, 10.0);
  const auto at_30 = core::adc(analog, 30.0);
  EXPECT_EQ(at_10, at_30);
}

// ---------------------------------------------------------- case analysis --

TEST(PropertyCase, CaseCountsPartitionTheSamples) {
  sim::Rng rng(5001);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.below(3);
    const std::size_t samples = 100 + rng.below(400);
    core::DigitalData data;
    data.inputs.assign(n, {});
    for (std::size_t k = 0; k < samples; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        data.inputs[i].push_back(rng.below(2) == 1);
      }
      data.output.push_back(rng.below(2) == 1);
    }
    const auto analysis = core::analyze_cases(data);
    std::size_t total = 0;
    std::size_t total_highs = 0;
    for (const auto& record : analysis.cases) {
      ASSERT_EQ(record.case_count, record.output_stream.size());
      total += record.case_count;
      for (const bool b : record.output_stream) total_highs += b ? 1 : 0;
    }
    ASSERT_EQ(total, samples);
    std::size_t direct_highs = 0;
    for (const bool b : data.output) direct_highs += b ? 1 : 0;
    ASSERT_EQ(total_highs, direct_highs);
  }
}

TEST(PropertyVariation, TransitionsBoundedByStreamLength) {
  sim::Rng rng(5002);
  for (int trial = 0; trial < 50; ++trial) {
    core::CaseAnalysis cases;
    cases.input_count = 1;
    cases.cases.resize(2);
    cases.cases[0].combination = 0;
    cases.cases[1].combination = 1;
    const std::size_t len = 1 + rng.below(200);
    for (std::size_t k = 0; k < len; ++k) {
      cases.cases[0].output_stream.push_back(rng.below(2) == 1);
    }
    cases.cases[0].case_count = len;
    const auto analysis = core::analyze_variation(cases);
    ASSERT_LE(analysis.records[0].variation_count, len - 1);
    ASSERT_LE(analysis.records[0].high_count, len);
    ASSERT_GE(analysis.records[0].fov_est, 0.0);
    ASSERT_LE(analysis.records[0].fov_est, 1.0);
  }
}

// ------------------------------------------------------------- the filters --

TEST(PropertyFilters, AcceptedSetGrowsWithFovUd) {
  // Larger FOV_UD can only admit more (never fewer) combinations.
  sim::Rng rng(6001);
  for (int trial = 0; trial < 40; ++trial) {
    core::VariationAnalysis analysis;
    analysis.input_count = 2;
    analysis.records.resize(4);
    for (std::size_t c = 0; c < 4; ++c) {
      auto& record = analysis.records[c];
      record.combination = c;
      record.case_count = 50 + rng.below(200);
      record.high_count = rng.below(record.case_count + 1);
      record.variation_count = rng.below(record.case_count);
      record.fov_est = static_cast<double>(record.variation_count) /
                       static_cast<double>(record.case_count);
    }
    std::size_t previous = 0;
    for (const double fov : {0.01, 0.1, 0.3, 0.7, 1.0}) {
      const auto result =
          core::construct_bool_expr(analysis, fov, {"A", "B"});
      const std::size_t accepted = result.extracted.minterms().size();
      ASSERT_GE(accepted, previous);
      previous = accepted;
      // PFoBE stays within [0, 100].
      ASSERT_LE(result.fitness_percent, 100.0 + 1e-12);
      ASSERT_GE(result.fitness_percent, 0.0);
    }
  }
}

TEST(PropertyFilters, PerfectlyStableDataExtractsExactly) {
  // Noise-free streams: extraction equals the generating function, PFoBE
  // is exactly 100.
  sim::Rng rng(6002);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + rng.below(3);
    const auto combos = static_cast<std::size_t>(1) << n;
    logic::TruthTable truth(n);
    for (std::size_t c = 0; c < combos; ++c) {
      truth.set_output(c, rng.below(2) == 1);
    }
    core::DigitalData data;
    data.inputs.assign(n, {});
    for (std::size_t c = 0; c < combos; ++c) {
      for (int k = 0; k < 40; ++k) {
        for (std::size_t i = 0; i < n; ++i) {
          data.inputs[i].push_back(((c >> (n - 1 - i)) & 1U) != 0);
        }
        data.output.push_back(truth.output(c));
      }
    }
    const core::LogicAnalyzer analyzer(core::AnalyzerConfig{15.0, 0.25});
    const auto result = analyzer.analyze_digital(
        data, logic::default_input_names(n), "Y");
    ASSERT_EQ(result.extracted(), truth);
    ASSERT_DOUBLE_EQ(result.fitness(), 100.0);
  }
}

// ----------------------------------------------- netlists and simulation --

/// Random NOT/NOR netlist over 2-3 inputs and up to 5 gates.
gates::Netlist random_netlist(sim::Rng& rng) {
  const std::size_t inputs = 2 + rng.below(2);
  gates::Netlist netlist(logic::default_input_names(inputs));
  const auto& library = gates::GateLibrary::standard();
  const std::size_t gate_count = 1 + rng.below(5);
  std::vector<gates::Net> nets;
  for (std::size_t i = 0; i < inputs; ++i) nets.push_back(gates::Net::input(i));
  for (std::size_t g = 0; g < gate_count; ++g) {
    const auto& repressor = library.gates()[g].name;
    const gates::Net a = nets[rng.below(nets.size())];
    if (rng.below(2) == 0) {
      nets.push_back(netlist.add_not(repressor, a));
    } else {
      const gates::Net b = nets[rng.below(nets.size())];
      nets.push_back(netlist.add_nor(repressor, a, b));
    }
  }
  netlist.set_output(gates::Net::gate(netlist.gate_count() - 1));
  return netlist;
}

TEST(PropertyNetlist, GeneratedModelsAlwaysValidate) {
  sim::Rng rng(7001);
  for (int trial = 0; trial < 60; ++trial) {
    const auto netlist = random_netlist(rng);
    const auto model =
        gates::netlist_to_model(netlist, gates::GateLibrary::standard());
    ASSERT_TRUE(sbml::is_valid(sbml::validate(model)));
    // Compiles into a simulatable network with one protein per gate.
    const auto net = crn::ReactionNetwork::compile(model);
    ASSERT_EQ(net.species_count(),
              netlist.input_count() + netlist.gate_count());
  }
}

TEST(PropertySsa, TraceInvariantsHoldAcrossKernels) {
  sim::Rng rng(7002);
  for (int trial = 0; trial < 10; ++trial) {
    const auto netlist = random_netlist(rng);
    const auto model =
        gates::netlist_to_model(netlist, gates::GateLibrary::standard());
    const auto net = crn::ReactionNetwork::compile(model);
    const auto schedule = sim::InputSchedule::combination_sweep(
        netlist.input_names(), 200.0, 15.0);
    for (const auto method :
         {sim::SsaMethod::kDirect, sim::SsaMethod::kNextReaction}) {
      const auto simulator = sim::make_simulator(method);
      sim::SimulationOptions options;
      options.seed = 42 + trial;
      const auto trace = simulator->run(net, schedule, 200.0, options);
      ASSERT_EQ(trace.sample_count(), 201u);
      for (std::size_t k = 1; k < trace.times().size(); ++k) {
        ASSERT_GT(trace.times()[k], trace.times()[k - 1]);
      }
      for (std::size_t s = 0; s < trace.species_count(); ++s) {
        for (const double x : trace.series(s)) {
          ASSERT_GE(x, 0.0);
          ASSERT_EQ(x, std::floor(x));  // whole molecules
        }
      }
    }
  }
}

}  // namespace
