// Unit tests for glva_crn: network compilation, propensities, stoichiometry,
// dependency graphs.

#include <gtest/gtest.h>

#include "crn/network.h"
#include "sbml/model.h"
#include "util/errors.h"

namespace {

using namespace glva;
using crn::ReactionNetwork;

sbml::Model birth_death() {
  sbml::Model m;
  m.id = "bd";
  m.add_compartment("cell");
  m.add_species("X", 5.0);
  m.add_parameter("kb", 2.0);
  m.add_parameter("kd", 0.1);
  m.add_reaction("birth", {}, {{"X", 1.0}}, "kb");
  m.add_reaction("death", {{"X", 1.0}}, {}, "kd * X");
  return m;
}

TEST(Network, CompilesSpeciesAndConstants) {
  const auto net = ReactionNetwork::compile(birth_death());
  EXPECT_EQ(net.species_count(), 1u);
  EXPECT_EQ(net.reaction_count(), 2u);
  EXPECT_EQ(net.species_index("X"), 0u);
  EXPECT_THROW((void)net.species_index("Y"), InvalidArgument);

  const auto values = net.initial_values();
  ASSERT_GE(values.size(), 3u);  // X + kb + kd (+ compartment)
  EXPECT_DOUBLE_EQ(values[0], 5.0);
}

TEST(Network, PropensitiesEvaluateKineticLaws) {
  const auto net = ReactionNetwork::compile(birth_death());
  auto values = net.initial_values();
  EXPECT_DOUBLE_EQ(net.propensity(0, values), 2.0);        // kb
  EXPECT_DOUBLE_EQ(net.propensity(1, values), 0.1 * 5.0);  // kd * X
}

TEST(Network, FireAppliesStoichiometry) {
  const auto net = ReactionNetwork::compile(birth_death());
  auto values = net.initial_values();
  net.fire(0, values);
  EXPECT_DOUBLE_EQ(values[0], 6.0);
  net.fire(1, values);
  EXPECT_DOUBLE_EQ(values[0], 5.0);
}

TEST(Network, RequirementsGateApplicability) {
  const auto net = ReactionNetwork::compile(birth_death());
  auto values = net.initial_values();
  values[0] = 0.0;
  // Death requires one X even though its law (kd * X = 0 anyway) is benign;
  // requirements make that a hard guarantee.
  EXPECT_DOUBLE_EQ(net.propensity(1, values), 0.0);
}

TEST(Network, CatalystOnlyReactantsStillRequired) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("E", 0.0);
  m.add_species("P", 0.0);
  m.add_parameter("k", 3.0);
  // E -> E + P: enzyme preserved, constant law. Without E present the
  // reaction must not fire.
  m.add_reaction("cat", {{"E", 1.0}}, {{"E", 1.0}, {"P", 1.0}}, "k");
  const auto net = ReactionNetwork::compile(m);
  auto values = net.initial_values();
  EXPECT_DOUBLE_EQ(net.propensity(0, values), 0.0);
  values[net.species_index("E")] = 1.0;
  EXPECT_DOUBLE_EQ(net.propensity(0, values), 3.0);
  net.fire(0, values);
  EXPECT_DOUBLE_EQ(values[net.species_index("E")], 1.0);  // net zero on E
  EXPECT_DOUBLE_EQ(values[net.species_index("P")], 1.0);
}

TEST(Network, BoundarySpeciesAreNotMutatedByReactions) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("In", 15.0, /*boundary=*/true);
  m.add_species("Out", 0.0);
  m.add_parameter("k", 1.0);
  // A reaction that formally consumes In: SBML boundary semantics say the
  // species amount is not updated by reactions.
  m.add_reaction("use", {{"In", 1.0}}, {{"Out", 1.0}}, "k * In");
  const auto net = ReactionNetwork::compile(m);
  auto values = net.initial_values();
  net.fire(0, values);
  EXPECT_DOUBLE_EQ(values[net.species_index("In")], 15.0);
  EXPECT_DOUBLE_EQ(values[net.species_index("Out")], 1.0);
  EXPECT_TRUE(net.is_boundary(net.species_index("In")));
  EXPECT_FALSE(net.is_boundary(net.species_index("Out")));
}

TEST(Network, NegativePropensityThrows) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 1.0);
  m.add_parameter("k", -1.0);
  m.add_reaction("bad", {}, {{"X", 1.0}}, "k");
  const auto net = ReactionNetwork::compile(m);
  const auto values = net.initial_values();
  EXPECT_THROW((void)net.propensity(0, values), SimulationError);
}

TEST(Network, DependencyGraphLinksWritersToReaders) {
  const auto net = ReactionNetwork::compile(birth_death());
  // birth changes X; death's law reads X -> birth affects death. birth's
  // law is constant -> birth does not affect itself.
  const auto& affected_by_birth = net.affected_reactions(0);
  EXPECT_EQ(affected_by_birth, (std::vector<std::size_t>{1}));
  // death changes X; death reads X -> self-affecting.
  const auto& affected_by_death = net.affected_reactions(1);
  EXPECT_EQ(affected_by_death, (std::vector<std::size_t>{1}));
}

TEST(Network, ModifierDependenciesCountAsReads) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("R", 0.0);
  m.add_species("P", 0.0);
  m.add_parameter("b", 1.0);
  m.add_reaction("makeR", {}, {{"R", 1.0}}, "b");
  m.add_reaction("makeP", {}, {{"P", 1.0}}, "b * (1 - hill(R, 8, 2))",
                 {sbml::ModifierReference{"R"}});
  const auto net = ReactionNetwork::compile(m);
  const auto& affected = net.affected_reactions(0);  // makeR changes R
  EXPECT_EQ(affected, (std::vector<std::size_t>{1}));
  EXPECT_EQ(net.reactions_reading(net.species_index("R")),
            (std::vector<std::size_t>{1}));
}

TEST(Network, LocalParametersGetPrivateSlots) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 0.0);
  sbml::Reaction& r1 = m.add_reaction("r1", {}, {{"X", 1.0}}, "rate");
  r1.kinetic_law.local_parameters.push_back({"rate", 2.0, true});
  sbml::Reaction& r2 = m.add_reaction("r2", {}, {{"X", 1.0}}, "rate");
  r2.kinetic_law.local_parameters.push_back({"rate", 5.0, true});
  const auto net = ReactionNetwork::compile(m);
  const auto values = net.initial_values();
  EXPECT_DOUBLE_EQ(net.propensity(0, values), 2.0);
  EXPECT_DOUBLE_EQ(net.propensity(1, values), 5.0);
}

TEST(Network, DuplicateSpeciesReferencesFold) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 10.0);
  m.add_parameter("k", 1.0);
  // X listed twice as reactant: requires 2, removes 2.
  m.add_reaction("dimerize", {{"X", 1.0}, {"X", 1.0}}, {}, "k * X * (X - 1)");
  const auto net = ReactionNetwork::compile(m);
  auto values = net.initial_values();
  net.fire(0, values);
  EXPECT_DOUBLE_EQ(values[0], 8.0);
  values[0] = 1.0;
  EXPECT_DOUBLE_EQ(net.propensity(0, values), 0.0);  // needs two molecules
}

TEST(Network, CompileRejectsInvalidModels) {
  sbml::Model m;  // no compartment
  EXPECT_THROW((void)ReactionNetwork::compile(m), ValidationError);
}

TEST(Network, FractionalInitialAmountsRound) {
  sbml::Model m;
  m.add_compartment("cell");
  m.add_species("X", 2.6);
  m.add_parameter("k", 1.0);
  m.add_reaction("r", {}, {{"X", 1.0}}, "k");
  const auto net = ReactionNetwork::compile(m);
  EXPECT_DOUBLE_EQ(net.initial_values()[0], 3.0);
}

}  // namespace
