// Unit tests for the observability layer (src/obs/): metrics registry
// shard-merge correctness under multithreaded load, histogram quantile
// bounds, snapshot rendering, the span tracer's Chrome trace-event JSON,
// and the --trace-out CLI round trip.
//
// Metric names are process-global and the registry is never reset, so
// every test uses its own "test.obs.<case>.*" names and asserts exact
// totals only on those.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/commands.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "util/log.h"

namespace {

using namespace glva;

std::uint64_t counter_value(const obs::Snapshot& snap,
                            const std::string& name) {
  for (const auto& sample : snap.counters) {
    if (sample.name == name) return sample.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

std::int64_t gauge_value(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& sample : snap.gauges) {
    if (sample.name == name) return sample.value;
  }
  ADD_FAILURE() << "gauge not found: " << name;
  return 0;
}

const obs::HistogramSample* find_histogram(const obs::Snapshot& snap,
                                           const std::string& name) {
  for (const auto& sample : snap.histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

// ------------------------------------------------------------- registry

TEST(Metrics, CounterMergesRetiredAndLiveShards) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;

  // Worker threads exit before the snapshot, so their shards are retired
  // into the registry's accumulator; the main thread's shard stays live.
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      obs::Counter& c = obs::counter("test.obs.merge.count");
      obs::Counter& weighted = obs::counter("test.obs.merge.weighted");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.increment();
      weighted.add(static_cast<std::uint64_t>(t) + 1);  // 1+2+...+8 = 36
    });
  }
  for (auto& worker : workers) worker.join();
  obs::counter("test.obs.merge.count").add(5);  // live main-thread shard

  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(counter_value(snap, "test.obs.merge.count"),
            kThreads * kPerThread + 5);
  EXPECT_EQ(counter_value(snap, "test.obs.merge.weighted"), 36u);
}

TEST(Metrics, SameNameReturnsSameHandle) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::Counter& a = obs::counter("test.obs.alias.counter");
  obs::Counter& b = obs::counter("test.obs.alias.counter");
  EXPECT_EQ(&a, &b);
  a.increment();
  b.add(2);
  EXPECT_EQ(counter_value(obs::snapshot(), "test.obs.alias.counter"), 3u);
}

TEST(Metrics, GaugeSetAndAdd) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::Gauge& g = obs::gauge("test.obs.gauge.depth");
  g.set(42);
  EXPECT_EQ(gauge_value(obs::snapshot(), "test.obs.gauge.depth"), 42);
  g.add(-50);
  EXPECT_EQ(gauge_value(obs::snapshot(), "test.obs.gauge.depth"), -8);
}

TEST(Metrics, SnapshotSortedByName) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::counter("test.obs.sort.zz").increment();
  obs::counter("test.obs.sort.aa").increment();
  const obs::Snapshot snap = obs::snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  for (std::size_t i = 1; i < snap.histograms.size(); ++i) {
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
  }
}

// ----------------------------------------------------------- histograms

TEST(Metrics, HistogramQuantilesStayInsideTrueBucket) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  // All observations land in one bucket of the 1-2-5 ladder, so every
  // quantile estimate must fall inside that bucket's bounds.
  obs::Histogram& h = obs::histogram("test.obs.hist.single");
  for (int i = 0; i < 100; ++i) h.observe(3.0);  // bucket (2, 5]

  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSample* sample =
      find_histogram(snap, "test.obs.hist.single");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 100u);
  EXPECT_DOUBLE_EQ(sample->sum, 300.0);
  for (const double q : {sample->p50, sample->p95, sample->p99}) {
    EXPECT_GE(q, 2.0);
    EXPECT_LE(q, 5.0);
  }
}

TEST(Metrics, HistogramQuantilesTrackMixedDistribution) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  // 90 values in (5, 10], 10 values in (100, 200]: the true p50 sits in
  // the low bucket and the true p95/p99 in the high one.
  obs::Histogram& h = obs::histogram("test.obs.hist.mixed");
  for (int i = 0; i < 90; ++i) h.observe(7.0);
  for (int i = 0; i < 10; ++i) h.observe(150.0);

  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSample* sample =
      find_histogram(snap, "test.obs.hist.mixed");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 100u);
  EXPECT_DOUBLE_EQ(sample->sum, 90 * 7.0 + 10 * 150.0);
  EXPECT_GE(sample->p50, 5.0);
  EXPECT_LE(sample->p50, 10.0);
  EXPECT_GE(sample->p95, 100.0);
  EXPECT_LE(sample->p95, 200.0);
  EXPECT_GE(sample->p99, 100.0);
  EXPECT_LE(sample->p99, 200.0);
}

TEST(Metrics, HistogramOverflowClampsToTopBoundary) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::Histogram& h = obs::histogram("test.obs.hist.overflow");
  h.observe(1e12);  // far beyond the last finite boundary
  h.observe(1e12);

  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSample* sample =
      find_histogram(snap, "test.obs.hist.overflow");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 2u);
  EXPECT_DOUBLE_EQ(sample->sum, 2e12);
  const double top = obs::histogram_boundaries().back();
  EXPECT_DOUBLE_EQ(sample->p50, top);
  EXPECT_DOUBLE_EQ(sample->p99, top);
}

TEST(Metrics, HistogramMergesAcrossThreads) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      obs::Histogram& h = obs::histogram("test.obs.hist.threads");
      for (int i = 0; i < kPerThread; ++i) h.observe(7.0);
    });
  }
  for (auto& worker : workers) worker.join();

  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSample* sample =
      find_histogram(snap, "test.obs.hist.threads");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(sample->sum, kThreads * kPerThread * 7.0);
  EXPECT_GE(sample->p50, 5.0);
  EXPECT_LE(sample->p50, 10.0);
}

TEST(Metrics, ScopedLatencyObservesOnDestruction) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::Histogram& h = obs::histogram("test.obs.hist.scoped");
  {
    const obs::ScopedLatency latency(h);
  }
  const obs::HistogramSample* sample =
      find_histogram(obs::snapshot(), "test.obs.hist.scoped");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1u);
}

// ------------------------------------------------------------ rendering

TEST(Metrics, RenderTextListsEveryKind) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::counter("test.obs.render.counter").add(7);
  obs::gauge("test.obs.render.gauge").set(-3);
  obs::histogram("test.obs.render.hist").observe(1.5);

  const std::string text = obs::render_text(obs::snapshot());
  EXPECT_NE(text.find("counter   test.obs.render.counter 7"),
            std::string::npos);
  EXPECT_NE(text.find("gauge     test.obs.render.gauge -3"),
            std::string::npos);
  EXPECT_NE(text.find("histogram test.obs.render.hist count=1"),
            std::string::npos);
}

TEST(Metrics, RenderJsonParsesAndCarriesValues) {
  if (!obs::metrics_enabled()) GTEST_SKIP() << "GLVA_NO_METRICS build";

  obs::counter("test.obs.json.counter").add(11);
  obs::histogram("test.obs.json.hist").observe(3.0);

  const serve::Json doc = serve::parse_json(obs::render_json(obs::snapshot()));
  ASSERT_TRUE(doc.is_object());
  const serve::Json* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  const serve::Json* value = counters->find("test.obs.json.counter");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->number, "11");

  const serve::Json* histograms = doc.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const serve::Json* hist = histograms->find("test.obs.json.hist");
  ASSERT_NE(hist, nullptr);
  for (const char* field : {"count", "sum", "p50", "p95", "p99"}) {
    EXPECT_NE(hist->find(field), nullptr) << field;
  }
}

// --------------------------------------------------------------- tracer

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  ASSERT_FALSE(obs::trace_enabled());
  {
    GLVA_SPAN("never.recorded");
  }
  EXPECT_TRUE(obs::drain_trace().empty());
}

TEST(Trace, CapturesNestedAndCrossThreadSpans) {
  static_cast<void>(obs::drain_trace());  // clear any stale events
  obs::trace_begin();
  {
    GLVA_SPAN("outer");
    {
      GLVA_SPAN("inner");
    }
    std::thread worker([] { GLVA_SPAN("worker"); });
    worker.join();
  }
  obs::trace_end();
  EXPECT_FALSE(obs::trace_enabled());

  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 3u);

  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* worker_span = nullptr;
  for (const obs::TraceEvent& event : events) {
    if (std::string(event.name) == "outer") outer = &event;
    if (std::string(event.name) == "inner") inner = &event;
    if (std::string(event.name) == "worker") worker_span = &event;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker_span, nullptr);

  // Parent precedes and contains the child; sort order is (ts asc,
  // duration desc) so "outer" comes first in the drained vector.
  EXPECT_EQ(events.front().name, std::string("outer"));
  EXPECT_LE(outer->ts_ns, inner->ts_ns);
  EXPECT_GE(outer->ts_ns + outer->dur_ns, inner->ts_ns + inner->dur_ns);
  EXPECT_NE(worker_span->tid, outer->tid);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
  }

  EXPECT_TRUE(obs::drain_trace().empty());  // drain moves everything out
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  static_cast<void>(obs::drain_trace());
  obs::trace_begin();
  {
    GLVA_SPAN("stage.a");
    GLVA_SPAN("stage.b");
  }
  obs::trace_end();
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 2u);

  const serve::Json doc =
      serve::parse_json(obs::render_chrome_trace(events));
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  for (const serve::Json& event : doc.array) {
    ASSERT_TRUE(event.is_object());
    const serve::Json* name = event.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_TRUE(name->is_string());
    const serve::Json* phase = event.find("ph");
    ASSERT_NE(phase, nullptr);
    EXPECT_EQ(phase->string, "X");
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      const serve::Json* member = event.find(field);
      ASSERT_NE(member, nullptr) << field;
      EXPECT_EQ(member->kind, serve::Json::Kind::kNumber) << field;
    }
  }
}

TEST(Trace, WriteChromeTraceRoundTripsThroughFile) {
  static_cast<void>(obs::drain_trace());
  obs::trace_begin();
  {
    GLVA_SPAN("file.span");
  }
  obs::trace_end();

  const std::string path =
      (std::filesystem::temp_directory_path() / "glva_test_obs_trace.json")
          .string();
  obs::write_chrome_trace(path, obs::drain_trace());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  std::remove(path.c_str());

  const serve::Json doc = serve::parse_json(content.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 1u);
  EXPECT_EQ(doc.array.front().find("name")->string, "file.span");
}

TEST(Trace, CliTraceOutWritesStageSpans) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "glva_test_cli_trace.json")
          .string();

  std::ostringstream out;
  std::ostringstream err;
  // 0x0B needs ~4000 tu to settle into the intended logic (exit 0).
  const int code = app::run_cli({"verify", "0x0B", "--total-time", "4000",
                                 "--seed", "7", "--no-timings", "--trace-out",
                                 path},
                                out, err);
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_NE(err.str().find("trace written to " + path), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  std::remove(path.c_str());

  const serve::Json doc = serve::parse_json(content.str());
  ASSERT_TRUE(doc.is_array());
  std::vector<std::string> names;
  names.reserve(doc.array.size());
  for (const serve::Json& event : doc.array) {
    names.push_back(event.find("name")->string);
  }
  // The verify pipeline's tentpole stages must be present.
  for (const char* expected : {"simulate", "analyze"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_FALSE(obs::trace_enabled());  // CLI path turned tracing back off
}

TEST(Trace, CliRejectsMissingTraceOutValue) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_NE(app::run_cli({"version", "--trace-out"}, out, err), 0);
}

// -------------------------------------------------------------- logging

TEST(Log, LevelFiltersAndFormats) {
  std::ostringstream sink;
  util::set_log_sink(&sink);
  const util::LogLevel previous = util::log_level();

  ASSERT_TRUE(util::set_log_level("warn"));
  util::log_info("hidden");
  util::log_warn("visible");
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("warn  visible"), std::string::npos);

  ASSERT_TRUE(util::set_log_level("debug"));
  util::log_debug("now shown");
  EXPECT_NE(sink.str().find("debug now shown"), std::string::npos);

  EXPECT_FALSE(util::set_log_level("loud"));  // unknown name rejected

  util::set_log_level(previous);
  util::set_log_sink(nullptr);
}

}  // namespace
