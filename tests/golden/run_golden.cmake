# Golden-output CLI regression driver, invoked by CTest as
#   cmake -DGLVA_BIN=... "-DGLVA_ARGS=..." -DGOLDEN_FILE=... \
#         -DOUTPUT_FILE=... -DEXPECT_RC=... -P run_golden.cmake
#
# Runs the glva CLI with a fixed seed and diffs its stdout byte-for-byte
# against the checked-in golden file. Only deterministic output may be
# pinned this way (no wall-clock timings); the simulators and the ensemble
# report are bit-reproducible by construction, which is what makes this
# check possible at all.
#
# To regenerate a golden after an intentional output change:
#   ./build/glva <args from CMakeLists.txt> > tests/golden/<name>.txt

foreach(required GLVA_BIN GLVA_ARGS GOLDEN_FILE OUTPUT_FILE EXPECT_RC)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "run_golden.cmake: missing -D${required}")
  endif()
endforeach()

separate_arguments(glva_args UNIX_COMMAND "${GLVA_ARGS}")
execute_process(
  COMMAND "${GLVA_BIN}" ${glva_args}
  OUTPUT_FILE "${OUTPUT_FILE}"
  ERROR_VARIABLE stderr_text
  RESULT_VARIABLE rc)

if(NOT rc EQUAL "${EXPECT_RC}")
  message(FATAL_ERROR
    "glva ${GLVA_ARGS} exited with ${rc} (expected ${EXPECT_RC})\n"
    "stderr:\n${stderr_text}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUTPUT_FILE}" "${GOLDEN_FILE}"
  RESULT_VARIABLE diff_rc)

if(NOT diff_rc EQUAL 0)
  file(READ "${GOLDEN_FILE}" golden_text)
  file(READ "${OUTPUT_FILE}" actual_text)
  message(FATAL_ERROR
    "golden mismatch for `glva ${GLVA_ARGS}`\n"
    "---- expected (${GOLDEN_FILE}) ----\n${golden_text}\n"
    "---- actual (${OUTPUT_FILE}) ----\n${actual_text}\n"
    "If the change is intentional, regenerate the golden file (see header "
    "of run_golden.cmake).")
endif()
