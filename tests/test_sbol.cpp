// Unit tests for glva_sbol: the SBOL-lite structural layer and the
// structure↔behaviour converters (the Roehner et al. substitute).

#include <gtest/gtest.h>

#include "circuits/cello_circuits.h"
#include "gates/gate_library.h"
#include "sbml/validate.h"
#include "sbol/converter.h"
#include "sbol/design.h"
#include "sbol/sbol_io.h"
#include "util/errors.h"

namespace {

using namespace glva;
using namespace glva::sbol;

Design and_gate_design() {
  return design_from_netlist(circuits::cello_netlist("0x8"), "design_0x8");
}

TEST(PartType, NamesRoundTrip) {
  for (const PartType type :
       {PartType::kPromoter, PartType::kRbs, PartType::kCds,
        PartType::kTerminator, PartType::kProtein, PartType::kSmallMolecule}) {
    EXPECT_EQ(parse_part_type(part_type_name(type)), type);
  }
  EXPECT_THROW((void)parse_part_type("plasmid"), ParseError);
}

TEST(DesignFromNetlist, EmitsUnitsPartsAndInteractions) {
  const Design design = and_gate_design();
  EXPECT_NO_THROW(design.check());
  // AND = NOR(NOT A, NOT B): three units.
  EXPECT_EQ(design.units.size(), 3u);
  EXPECT_EQ(design.inputs, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(design.output, "GFP");
  // The output unit records its implementing library gate.
  const TranscriptionUnit* out = design.find_unit("tu_GFP");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->gate, "PhlF");
  // Its cassette: two promoters (repressed by SrpR and QacR), rbs, cds, ter.
  EXPECT_EQ(out->dna_parts.size(), 5u);
  EXPECT_EQ(design.unit_promoters(*out).size(), 2u);
  EXPECT_EQ(design.promoter_repressors("pSrpR"),
            (std::vector<std::string>{"SrpR"}));
}

TEST(DesignFromNetlist, SharedPromotersAreDeclaredOnce) {
  // 0x6 XOR reuses n1's protein (AmtR) as fan-in of two later gates; the
  // promoter part pAmtR must exist exactly once.
  const Design design =
      design_from_netlist(circuits::cello_netlist("0x6"), "design_0x6");
  std::size_t pamtr = 0;
  for (const auto& part : design.parts) {
    if (part.id == "pAmtR") ++pamtr;
  }
  EXPECT_EQ(pamtr, 1u);
  EXPECT_NO_THROW(design.check());
}

TEST(DesignCheck, RejectsStructuralViolations) {
  Design design = and_gate_design();
  design.units[0].dna_parts.pop_back();  // drop the terminator
  EXPECT_THROW(design.check(), ValidationError);

  Design dup = and_gate_design();
  dup.parts.push_back(dup.parts.front());
  EXPECT_THROW(dup.check(), ValidationError);

  Design bad_output = and_gate_design();
  bad_output.output = "A";  // small molecule, not a protein
  EXPECT_THROW(bad_output.check(), ValidationError);

  Design bad_rep = and_gate_design();
  bad_rep.interactions.push_back(Interaction{
      "r", InteractionKind::kRepression, "rbs_GFP", "pSrpR"});
  EXPECT_THROW(bad_rep.check(), ValidationError);
}

TEST(SbolIo, XmlRoundTripPreservesEverything) {
  const Design original = and_gate_design();
  const Design reloaded = read_design(write_design(original));
  EXPECT_NO_THROW(reloaded.check());
  EXPECT_EQ(reloaded.id, original.id);
  EXPECT_EQ(reloaded.parts.size(), original.parts.size());
  EXPECT_EQ(reloaded.units.size(), original.units.size());
  EXPECT_EQ(reloaded.interactions.size(), original.interactions.size());
  EXPECT_EQ(reloaded.inputs, original.inputs);
  EXPECT_EQ(reloaded.output, original.output);
  ASSERT_NE(reloaded.find_unit("tu_GFP"), nullptr);
  EXPECT_EQ(reloaded.find_unit("tu_GFP")->gate, "PhlF");
  EXPECT_EQ(reloaded.find_unit("tu_GFP")->dna_parts,
            original.find_unit("tu_GFP")->dna_parts);
}

TEST(SbolIo, RejectsForeignDocuments) {
  EXPECT_THROW((void)read_design("<sbml/>"), ParseError);
  EXPECT_THROW((void)read_design("<sbolLite><part id=\"x\"/></sbolLite>"),
               ParseError);  // part missing type
  EXPECT_THROW(
      (void)read_design("<sbolLite><interaction id=\"i\" kind=\"activation\" "
                        "subject=\"a\" object=\"b\"/></sbolLite>"),
      ParseError);  // unknown interaction kind
}

TEST(NetlistFromDesign, ReconstructsTheSameFunction) {
  for (const auto& name : circuits::cello_circuit_names()) {
    const auto netlist = circuits::cello_netlist(name);
    const Design design = design_from_netlist(netlist, "d_" + name);
    const auto rebuilt = netlist_from_design(design);
    EXPECT_EQ(rebuilt.ideal_truth_table(), netlist.ideal_truth_table())
        << name;
    EXPECT_EQ(rebuilt.gate_count(), netlist.gate_count()) << name;
  }
}

TEST(NetlistFromDesign, FullXmlPipelinePreservesFunction) {
  // netlist -> design -> XML -> design -> netlist -> SBML, end to end.
  const auto netlist = circuits::cello_netlist("0x0B");
  const Design design = design_from_netlist(netlist, "d_0x0B");
  const Design reloaded = read_design(write_design(design));
  const sbml::Model model =
      design_to_model(reloaded, gates::GateLibrary::standard());
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));
  EXPECT_NE(model.find_species("GFP"), nullptr);
  EXPECT_TRUE(model.find_species("A")->boundary_condition);
}

TEST(NetlistFromDesign, RejectsFeedbackAndWideGates) {
  // Feedback: GFP represses its own promoter chain.
  Design feedback = and_gate_design();
  feedback.interactions.push_back(Interaction{
      "rep_loop", InteractionKind::kRepression, "GFP", "pSrpR"});
  // pSrpR now has two repressors (SrpR and GFP) feeding tu_GFP via one
  // promoter each... the GFP unit reads promoters pSrpR+pQacR -> 3 fanins.
  EXPECT_THROW((void)netlist_from_design(feedback), ValidationError);

  // A repressor with no producing unit.
  Design orphan = and_gate_design();
  orphan.parts.push_back(Part{"Ghost", PartType::kProtein, ""});
  for (auto& interaction : orphan.interactions) {
    if (interaction.id == "rep_SrpR_pSrpR") interaction.subject = "Ghost";
  }
  EXPECT_THROW((void)netlist_from_design(orphan), ValidationError);
}

TEST(NetlistFromDesign, HandWrittenDesignWithoutGateNamesFallsBack) {
  // A minimal hand-written inverter whose unit has no `gate` attribute:
  // the converter falls back to the product name for library lookup.
  Design design;
  design.id = "hand_inverter";
  design.parts = {
      Part{"In", PartType::kSmallMolecule, ""},
      Part{"PhlF", PartType::kProtein, ""},
      Part{"pIn", PartType::kPromoter, ""},
      Part{"rbs1", PartType::kRbs, ""},
      Part{"cds1", PartType::kCds, ""},
      Part{"ter1", PartType::kTerminator, ""},
  };
  design.units = {TranscriptionUnit{
      "tu1", {"pIn", "rbs1", "cds1", "ter1"}, "PhlF", ""}};
  design.interactions = {
      Interaction{"r1", InteractionKind::kRepression, "In", "pIn"},
      Interaction{"p1", InteractionKind::kGeneticProduction, "tu1", "PhlF"},
  };
  design.inputs = {"In"};
  design.output = "PhlF";
  const auto netlist = netlist_from_design(design);
  EXPECT_EQ(netlist.gate_count(), 1u);
  EXPECT_EQ(netlist.ideal_truth_table(), logic::TruthTable::not_gate());
}

}  // namespace
