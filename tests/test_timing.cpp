// Unit tests for glva_timing: threshold and propagation-delay estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/circuit_repository.h"
#include "sim/trace.h"
#include "sim/virtual_lab.h"
#include "timing/delay_estimator.h"
#include "timing/threshold_estimator.h"
#include "util/errors.h"

namespace {

using namespace glva;
using namespace glva::timing;

TEST(ThresholdEstimator, SeparatesBimodalSamples) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(1.0 + (i % 3));
  for (int i = 0; i < 1000; ++i) samples.push_back(55.0 + (i % 7));
  const auto analysis = estimate_threshold(samples);
  EXPECT_GT(analysis.threshold, 5.0);
  EXPECT_LT(analysis.threshold, 54.0);
  EXPECT_NEAR(analysis.off_mean, 2.0, 0.5);
  EXPECT_NEAR(analysis.on_mean, 58.0, 1.5);
  EXPECT_GT(analysis.separation, 0.8);
}

TEST(ThresholdEstimator, UnimodalSignalScoresLowSeparation) {
  std::vector<double> samples(2000, 30.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] += static_cast<double>(i % 5);
  }
  const auto analysis = estimate_threshold(samples);
  EXPECT_LT(analysis.separation, 0.6);
}

TEST(ThresholdEstimator, EmptySampleThrows) {
  EXPECT_THROW((void)estimate_threshold(std::vector<double>{}),
               InvalidArgument);
}

TEST(ThresholdEstimator, LabFlowRecoversUsableThreshold) {
  const auto spec = circuits::CircuitRepository::build("myers_not");
  sim::VirtualLab lab(spec.model, sim::LabOptions{1.0, 3, sim::SsaMethod::kDirect});
  lab.declare_inputs(spec.input_ids);
  const auto analysis = estimate_threshold(lab, "GFP", 30.0, 5000.0);
  // Inverter plateaus: floor ~0.8, plateau ~60. Any threshold between the
  // plateaus digitizes correctly; the paper uses 15.
  EXPECT_GT(analysis.threshold, 3.0);
  EXPECT_LT(analysis.threshold, 55.0);
  EXPECT_GT(analysis.separation, 0.5);
}

// Build a deterministic square-wave trace with a known lag.
sim::Trace delayed_square(double lag, double period, double total,
                          double high) {
  sim::Trace trace({"In", "Out"});
  for (double t = 0.0; t <= total; t += 1.0) {
    const bool in_high = std::fmod(t, 2.0 * period) >= period;
    const double t_shifted = t - lag;
    const bool out_high =
        t_shifted >= 0.0 && std::fmod(t_shifted, 2.0 * period) >= period;
    trace.append(t, {in_high ? high : 0.0, out_high ? high : 0.0});
  }
  return trace;
}

sim::InputSchedule square_schedule(double period, double total, double high) {
  sim::InputSchedule schedule(std::vector<std::string>{"In"});
  bool level = false;
  for (double t = 0.0; t < total; t += period) {
    schedule.add_phase(t, {level ? high : 0.0});
    level = !level;
  }
  return schedule;
}

TEST(DelayEstimator, RecoversKnownLag) {
  const double lag = 37.0;
  const auto trace = delayed_square(lag, 500.0, 4000.0, 30.0);
  const auto schedule = square_schedule(500.0, 4000.0, 30.0);
  const auto analysis = estimate_delays(trace, schedule, "Out", 15.0, 5);
  ASSERT_GE(analysis.events.size(), 4u);
  EXPECT_NEAR(analysis.mean_rise_delay, lag, 1.5);
  EXPECT_NEAR(analysis.mean_fall_delay, lag, 1.5);
  EXPECT_NEAR(analysis.max_delay, lag, 1.5);
  EXPECT_NEAR(analysis.recommended_hold_time, lag * 1.25, 2.0);
}

TEST(DelayEstimator, PersistenceIgnoresGlitches) {
  // A glitch shortly after the input change must not count as the
  // crossing; the persistent transition happens at lag = 50.
  sim::Trace trace({"In", "Out"});
  for (double t = 0.0; t <= 1000.0; t += 1.0) {
    const double in = t >= 500.0 ? 30.0 : 0.0;
    double out = t >= 550.0 ? 30.0 : 0.0;
    if (t >= 505.0 && t < 508.0) out = 30.0;  // 3-sample glitch
    trace.append(t, {in, out});
  }
  sim::InputSchedule schedule(std::vector<std::string>{"In"});
  schedule.add_phase(0.0, {0.0});
  schedule.add_phase(500.0, {30.0});
  const auto analysis = estimate_delays(trace, schedule, "Out", 15.0, 10);
  ASSERT_EQ(analysis.events.size(), 1u);
  EXPECT_NEAR(analysis.events[0].delay(), 50.0, 1.5);
  EXPECT_TRUE(analysis.events[0].rising);
}

TEST(DelayEstimator, NoTransitionsYieldsNoEvents) {
  sim::Trace trace({"In", "Out"});
  for (double t = 0.0; t <= 100.0; t += 1.0) {
    trace.append(t, {0.0, 50.0});
  }
  sim::InputSchedule schedule(std::vector<std::string>{"In"});
  schedule.add_phase(0.0, {0.0});
  schedule.add_phase(50.0, {30.0});
  const auto analysis = estimate_delays(trace, schedule, "Out", 15.0);
  EXPECT_TRUE(analysis.events.empty());
  EXPECT_DOUBLE_EQ(analysis.max_delay, 0.0);
}

TEST(DelayEstimator, ValidatesArguments) {
  sim::Trace trace({"Out"});
  sim::InputSchedule schedule(std::vector<std::string>{"In"});
  schedule.add_phase(0.0, {0.0});
  EXPECT_THROW((void)estimate_delays(trace, schedule, "Out", 15.0),
               InvalidArgument);  // empty trace
  trace.append(0.0, {1.0});
  EXPECT_THROW((void)estimate_delays(trace, schedule, "Out", -1.0),
               InvalidArgument);  // bad threshold
}

TEST(DelayEstimator, MeasuresRealCircuitDelays) {
  const auto spec = circuits::CircuitRepository::build("0x1C");
  sim::VirtualLab lab(spec.model, sim::LabOptions{1.0, 5, sim::SsaMethod::kDirect});
  lab.declare_inputs(spec.input_ids);
  const auto sweep = lab.run_combination_sweep(10000.0, 15.0);
  const auto analysis =
      estimate_delays(sweep.trace, sweep.schedule, "GFP", 15.0);
  ASSERT_GE(analysis.events.size(), 2u);
  // Two-gate circuit: delays land well inside the paper's 1000-tu
  // assumption but are clearly nonzero.
  EXPECT_GT(analysis.max_delay, 10.0);
  EXPECT_LT(analysis.max_delay, 1000.0);
}

}  // namespace
