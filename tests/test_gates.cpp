// Unit tests for glva_gates: the gate library, netlists, and the
// netlist-to-SBML model generator.

#include <gtest/gtest.h>

#include "gates/gate_library.h"
#include "gates/netlist.h"
#include "gates/netlist_to_sbml.h"
#include "sbml/validate.h"
#include "util/errors.h"

namespace {

using namespace glva;
using namespace glva::gates;

TEST(GateLibrary, StandardLibraryLooksUpByName) {
  const GateLibrary& lib = GateLibrary::standard();
  EXPECT_GE(lib.gates().size(), 12u);
  EXPECT_TRUE(lib.contains("PhlF"));
  EXPECT_FALSE(lib.contains("Unobtainium"));
  EXPECT_EQ(lib.gate("SrpR").name, "SrpR");
  EXPECT_THROW((void)lib.gate("Unobtainium"), InvalidArgument);
  EXPECT_THROW(GateLibrary({}), InvalidArgument);
}

TEST(GateLibrary, ResponseParametersAreLogicCompatible) {
  // Every gate must: (1) have its half-point well below the 15-molecule
  // input level, (2) plateau well above it, (3) leak floor well below it —
  // otherwise inputs applied at the paper's threshold cannot switch it.
  for (const auto& gate : GateLibrary::standard().gates()) {
    EXPECT_LT(gate.hill_k, 10.0) << gate.name;
    EXPECT_GT(gate.plateau(), 30.0) << gate.name;
    EXPECT_LT(gate.floor(), 3.0) << gate.name;
    EXPECT_GE(gate.hill_n, 1.5) << gate.name;
  }
}

TEST(Netlist, BuildsAndChecksSimpleGate) {
  Netlist nl({"A", "B"});
  const Net out = nl.add_nor("PhlF", Net::input(0), Net::input(1));
  nl.set_output(out);
  EXPECT_NO_THROW(nl.check());
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.ideal_truth_table(), logic::TruthTable::nor_gate(2));
}

TEST(Netlist, IdealSemanticsComposeThroughLevels) {
  // AND = NOR(NOT A, NOT B)
  Netlist nl({"A", "B"});
  const Net na = nl.add_not("SrpR", Net::input(0));
  const Net nb = nl.add_not("QacR", Net::input(1));
  nl.set_output(nl.add_nor("PhlF", na, nb));
  EXPECT_EQ(nl.ideal_truth_table(), logic::TruthTable::and_gate(2));
}

TEST(Netlist, RejectsStructuralErrors) {
  Netlist no_output({"A"});
  no_output.add_not("PhlF", Net::input(0));
  EXPECT_THROW((void)no_output.ideal_truth_table(), ValidationError);

  Netlist reuse({"A"});
  const Net g0 = reuse.add_not("PhlF", Net::input(0));
  reuse.set_output(reuse.add_not("PhlF", g0));  // repressor reused
  EXPECT_THROW(reuse.check(), ValidationError);

  Netlist cycle({"A"});
  const Net fwd = cycle.add_not("SrpR", Net::gate(1));  // references later gate
  cycle.set_output(cycle.add_not("PhlF", fwd));
  EXPECT_THROW(cycle.check(), ValidationError);

  Netlist bad_input({"A"});
  bad_input.set_output(bad_input.add_not("PhlF", Net::input(3)));
  EXPECT_THROW(bad_input.check(), ValidationError);

  Netlist nl({"A"});
  EXPECT_THROW(nl.set_output(Net::input(0)), InvalidArgument);
  EXPECT_THROW((void)nl.output(), InvalidArgument);
  EXPECT_THROW(Netlist({}), InvalidArgument);
}

TEST(Netlist, PartsSummaryCountsTranscriptionUnits) {
  Netlist nl({"A", "B"});
  const Net na = nl.add_not("SrpR", Net::input(0));
  const Net nb = nl.add_not("QacR", Net::input(1));
  nl.set_output(nl.add_nor("PhlF", na, nb));
  const PartsSummary parts = nl.parts_summary();
  // Gates: 1+1+2 fan-in promoters; reporter adds one more.
  EXPECT_EQ(parts.promoters, 5u);
  EXPECT_EQ(parts.rbs, 4u);          // 3 gates + reporter
  EXPECT_EQ(parts.cds, 4u);
  EXPECT_EQ(parts.terminators, 4u);
  EXPECT_EQ(parts.total(), 17u);
}

TEST(NetlistToSbml, GeneratesValidatedModel) {
  Netlist nl({"A", "B"});
  const Net na = nl.add_not("SrpR", Net::input(0));
  const Net nb = nl.add_not("QacR", Net::input(1));
  nl.set_output(nl.add_nor("PhlF", na, nb));

  ModelOptions options;
  options.model_id = "and_gate";
  const sbml::Model model =
      netlist_to_model(nl, GateLibrary::standard(), options);

  EXPECT_EQ(model.id, "and_gate");
  // Species: 2 inputs + SrpR + QacR + GFP (output gate renamed).
  EXPECT_EQ(model.species.size(), 5u);
  EXPECT_NE(model.find_species("GFP"), nullptr);
  EXPECT_EQ(model.find_species("PhlF"), nullptr);  // renamed to GFP
  EXPECT_TRUE(model.find_species("A")->boundary_condition);
  EXPECT_FALSE(model.find_species("SrpR")->boundary_condition);
  // Two reactions per gate.
  EXPECT_EQ(model.reactions.size(), 6u);
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));
}

TEST(NetlistToSbml, ProductionLawsReferenceFaninsAsModifiers) {
  Netlist nl({"A", "B"});
  nl.set_output(nl.add_nor("PhlF", Net::input(0), Net::input(1)));
  const sbml::Model model = netlist_to_model(nl, GateLibrary::standard());
  const sbml::Reaction* production = model.find_reaction("PhlF_prod");
  ASSERT_NE(production, nullptr);
  ASSERT_EQ(production->modifiers.size(), 2u);
  EXPECT_EQ(production->modifiers[0].species, "A");
  // The law mentions both fan-ins (summed repression).
  const auto symbols = production->kinetic_law.math->symbols();
  EXPECT_NE(std::find(symbols.begin(), symbols.end(), "A"), symbols.end());
  EXPECT_NE(std::find(symbols.begin(), symbols.end(), "B"), symbols.end());
}

TEST(NetlistToSbml, ExposesRetunableParameters) {
  Netlist nl({"A"});
  nl.set_output(nl.add_not("PhlF", Net::input(0)));
  const sbml::Model model = netlist_to_model(nl, GateLibrary::standard());
  for (const char* suffix : {"_ymax", "_ymin", "_K", "_n", "_delta"}) {
    EXPECT_NE(model.find_parameter("PhlF" + std::string(suffix)), nullptr)
        << suffix;
  }
  EXPECT_DOUBLE_EQ(model.find_parameter("PhlF_K")->value,
                   GateLibrary::standard().gate("PhlF").hill_k);
}

TEST(NetlistToSbml, TwoStageExpandsToMrnaAndProtein) {
  Netlist nl({"A"});
  nl.set_output(nl.add_not("PhlF", Net::input(0)));
  ModelOptions options;
  options.two_stage = true;
  const sbml::Model model =
      netlist_to_model(nl, GateLibrary::standard(), options);
  EXPECT_NE(model.find_species("GFP_mRNA"), nullptr);
  EXPECT_NE(model.find_species("GFP"), nullptr);
  // Four reactions per gate: tx, mRNA decay, translation, protein decay.
  EXPECT_EQ(model.reactions.size(), 4u);
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));
  // The transcription scale preserves the protein plateau: the law is
  // txscale * response, and at steady state protein = response * (tl *
  // txscale / mdelta) / pdelta, so tl * txscale / mdelta must equal 1.
  const auto& gate = GateLibrary::standard().gate("PhlF");
  const double scale = model.find_parameter("PhlF_txscale")->value;
  EXPECT_NEAR(scale * gate.translation / gate.mrna_decay, 1.0, 1e-12);
}

TEST(NetlistToSbml, UnknownRepressorFails) {
  Netlist nl({"A"});
  nl.set_output(nl.add_not("Unobtainium", Net::input(0)));
  EXPECT_THROW((void)netlist_to_model(nl, GateLibrary::standard()),
               InvalidArgument);
}

}  // namespace
