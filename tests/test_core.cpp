// Unit tests for glva_core: ADC, CaseAnalyzer, VariationAnalyzer, the two
// filters, PFoBE, verification, baselines, and reports — including the
// paper's own worked numbers from Figures 2 and 4.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/circuit_repository.h"
#include "core/adc.h"
#include "core/baseline.h"
#include "core/bool_constructor.h"
#include "core/case_analyzer.h"
#include "core/experiment.h"
#include "core/logic_analyzer.h"
#include "core/report.h"
#include "core/threshold_sweep.h"
#include "core/variation_analyzer.h"
#include "core/verifier.h"
#include "sim/rng.h"
#include "sim/trace.h"
#include "util/errors.h"

namespace {

using namespace glva;
using namespace glva::core;

// -------------------------------------------------------------------- ADC

TEST(Adc, ThresholdIsInclusive) {
  const auto bits = adc({0.0, 14.9, 15.0, 15.1, 100.0}, 15.0);
  EXPECT_EQ(bits, (std::vector<bool>{false, false, true, true, true}));
}

TEST(Adc, RejectsNonPositiveThreshold) {
  EXPECT_THROW((void)adc({1.0}, 0.0), InvalidArgument);
  EXPECT_THROW((void)adc({1.0}, -3.0), InvalidArgument);
}

TEST(Adc, DigitizeSelectsSpecies) {
  sim::Trace trace({"A", "B", "GFP"});
  trace.append(0.0, {15.0, 0.0, 20.0});
  trace.append(1.0, {0.0, 15.0, 3.0});
  const DigitalData data = digitize(trace, {"A", "B"}, "GFP", 15.0);
  EXPECT_EQ(data.input_count(), 2u);
  EXPECT_EQ(data.sample_count(), 2u);
  EXPECT_TRUE(data.inputs[0][0]);
  EXPECT_FALSE(data.inputs[0][1]);
  EXPECT_TRUE(data.output[0]);
  EXPECT_FALSE(data.output[1]);
  EXPECT_THROW((void)digitize(trace, {}, "GFP", 15.0), InvalidArgument);
  EXPECT_THROW((void)digitize(trace, {"Nope"}, "GFP", 15.0), InvalidArgument);
}

// ---------------------------------------------------------- case analyzer

DigitalData two_input_data(const std::vector<int>& combos,
                           const std::vector<bool>& output) {
  DigitalData data;
  data.inputs.assign(2, {});
  for (std::size_t k = 0; k < combos.size(); ++k) {
    data.inputs[0].push_back((combos[k] & 2) != 0);
    data.inputs[1].push_back((combos[k] & 1) != 0);
    data.output.push_back(output[k]);
  }
  return data;
}

TEST(CaseAnalyzer, PartitionsSamplesByCombination) {
  const auto data = two_input_data({0, 0, 1, 3, 3, 3, 0},
                                   {true, false, true, true, true, false, false});
  const CaseAnalysis analysis = analyze_cases(data);
  ASSERT_EQ(analysis.cases.size(), 4u);
  EXPECT_EQ(analysis.cases[0].case_count, 3u);
  EXPECT_EQ(analysis.cases[1].case_count, 1u);
  EXPECT_EQ(analysis.cases[2].case_count, 0u);
  EXPECT_EQ(analysis.cases[3].case_count, 3u);
  // Streams preserve sample order within a case.
  EXPECT_EQ(analysis.cases[0].output_stream,
            (std::vector<bool>{true, false, false}));
  EXPECT_EQ(analysis.cases[3].output_stream,
            (std::vector<bool>{true, true, false}));
}

TEST(CaseAnalyzer, CaseCountEqualsStreamLength) {
  // "the value of Case_I[i] will always be equivalent to the length of its
  // corresponding output data stream" (the paper, Section II).
  const auto data = two_input_data({0, 1, 2, 3, 2, 1}, std::vector<bool>(6));
  for (const auto& record : analyze_cases(data).cases) {
    EXPECT_EQ(record.case_count, record.output_stream.size());
  }
}

TEST(CaseAnalyzer, ValidatesInput) {
  DigitalData empty;
  EXPECT_THROW((void)analyze_cases(empty), InvalidArgument);
  DigitalData ragged;
  ragged.inputs = {{true, false}, {true}};
  ragged.output = {true, false};
  EXPECT_THROW((void)analyze_cases(ragged), InvalidArgument);
}

// ----------------------------------------------------- variation analyzer

TEST(VariationAnalyzer, CountsHighsAndTransitions) {
  CaseAnalysis cases;
  cases.input_count = 1;
  cases.cases.resize(2);
  cases.cases[0].combination = 0;
  cases.cases[0].case_count = 8;
  cases.cases[0].output_stream = {false, true, true, false, false,
                                  true,  false, false};
  cases.cases[1].combination = 1;
  const VariationAnalysis analysis = analyze_variation(cases);
  EXPECT_EQ(analysis.records[0].high_count, 3u);
  EXPECT_EQ(analysis.records[0].variation_count, 4u);  // 0->1,1->0,0->1,1->0
  EXPECT_DOUBLE_EQ(analysis.records[0].fov_est, 4.0 / 8.0);
  EXPECT_EQ(analysis.records[1].case_count, 0u);
  EXPECT_DOUBLE_EQ(analysis.records[1].fov_est, 0.0);
}

TEST(VariationAnalyzer, SingleGlitchHasTwoVariations) {
  // The paper's Figure 2(b) case 00: three 1s in one pulse -> O_Var = 2.
  CaseAnalysis cases;
  cases.input_count = 1;
  cases.cases.resize(2);
  cases.cases[0].combination = 0;
  std::vector<bool> stream(1850, false);
  for (std::size_t k = 900; k < 903; ++k) stream[k] = true;
  cases.cases[0].case_count = stream.size();
  cases.cases[0].output_stream = stream;
  const VariationAnalysis analysis = analyze_variation(cases);
  EXPECT_EQ(analysis.records[0].high_count, 3u);
  EXPECT_EQ(analysis.records[0].variation_count, 2u);
  EXPECT_NEAR(analysis.records[0].fov_est, 2.0 / 1850.0, 1e-12);
}

// ------------------------------------------------------------ the filters

/// Build a VariationAnalysis directly (unit-testing the constructor without
/// streams).
VariationAnalysis stats2(std::size_t n00, std::size_t h00, std::size_t v00,
                         std::size_t n11, std::size_t h11, std::size_t v11) {
  VariationAnalysis analysis;
  analysis.input_count = 2;
  analysis.records.resize(4);
  for (std::size_t c = 0; c < 4; ++c) analysis.records[c].combination = c;
  analysis.records[0] = {0, n00, h00, v00,
                         n00 ? static_cast<double>(v00) / n00 : 0.0};
  analysis.records[3] = {3, n11, h11, v11,
                         n11 ? static_cast<double>(v11) / n11 : 0.0};
  // Middle combinations observed low and stable.
  analysis.records[1] = {1, 100, 0, 0, 0.0};
  analysis.records[2] = {2, 100, 0, 0, 0.0};
  return analysis;
}

TEST(BoolConstructor, ReproducesPaperFigure2Numbers) {
  // Figure 2(b): case 00 -> Case_I 1850, 3 ones, 2 variations; case 11 ->
  // Case_I 3050, 1875 ones, 7 variations. With FOV_UD = 0.25 the result
  // must be AND (11 only), not XNOR.
  const auto analysis = stats2(1850, 3, 2, 3050, 1875, 7);
  const auto result = construct_bool_expr(analysis, 0.25, {"A", "B"});

  // FOV_EST values match the paper: 2/1850 and 7/3050.
  EXPECT_NEAR(analysis.records[0].fov_est, 2.0 / 1850.0, 1e-12);
  EXPECT_NEAR(analysis.records[3].fov_est, 7.0 / 3050.0, 1e-12);
  // Filter 2 (eq. 2): 3 << 1850/2 fails, 1875 > 3050/2 passes.
  EXPECT_FALSE(result.outcomes[0].filter2_pass);
  EXPECT_TRUE(result.outcomes[3].filter2_pass);
  // Both filters together: AND.
  EXPECT_EQ(result.minimized.to_string(), "A·B");
  EXPECT_EQ(result.extracted.minterms(), (std::vector<std::size_t>{3}));
  // PFoBE = 100 - ((7/3050) / 4) * 100.
  EXPECT_NEAR(result.fitness_percent, 100.0 - (7.0 / 3050.0) / 4.0 * 100.0,
              1e-9);
}

TEST(BoolConstructor, MajorityBoundaryIsStrict) {
  // HIGH_O must be strictly greater than Case_I / 2 (equation (2)).
  const auto exactly_half = stats2(100, 50, 0, 100, 51, 0);
  const auto result = construct_bool_expr(exactly_half, 0.25, {"A", "B"});
  EXPECT_FALSE(result.outcomes[0].filter2_pass);  // 50 is not > 50
  EXPECT_TRUE(result.outcomes[3].filter2_pass);   // 51 is
}

TEST(BoolConstructor, StabilityBoundaryIsStrict) {
  // FOV_EST must be strictly below FOV_UD (equation (1)).
  const auto at_limit = stats2(100, 80, 25, 100, 80, 24);
  const auto result = construct_bool_expr(at_limit, 0.25, {"A", "B"});
  EXPECT_FALSE(result.outcomes[0].filter1_pass);  // 0.25 not < 0.25
  EXPECT_TRUE(result.outcomes[3].filter1_pass);   // 0.24 is
  // The majority-high-but-unstable case is reported as such.
  EXPECT_EQ(result.outcomes[0].verdict, CaseVerdict::kUnstable);
  EXPECT_EQ(result.unstable, (std::vector<std::size_t>{0}));
}

TEST(BoolConstructor, UnobservedCombinationsBecomeDontCares) {
  VariationAnalysis analysis;
  analysis.input_count = 2;
  analysis.records.resize(4);
  for (std::size_t c = 0; c < 4; ++c) analysis.records[c].combination = c;
  // Only combos 1 and 3 observed; 1 is high, 3 is low. 0 and 2 unseen.
  analysis.records[1] = {1, 100, 95, 2, 0.02};
  analysis.records[3] = {3, 100, 1, 2, 0.02};
  const auto result = construct_bool_expr(analysis, 0.25, {"A", "B"});
  EXPECT_EQ(result.unobserved, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(result.outcomes[0].verdict, CaseVerdict::kUnobserved);
  // Minimization may exploit the unobserved rows: {1} + dc{0,2} -> B ... but
  // never cover observed-low combo 3.
  EXPECT_TRUE(result.minimized.evaluate(1));
  EXPECT_FALSE(result.minimized.evaluate(3));
}

TEST(BoolConstructor, PfobeIs100WhenNoVariation) {
  const auto clean = stats2(100, 0, 0, 100, 100, 0);
  const auto result = construct_bool_expr(clean, 0.25, {"A", "B"});
  EXPECT_DOUBLE_EQ(result.fitness_percent, 100.0);
}

TEST(BoolConstructor, ValidatesArguments) {
  const auto analysis = stats2(10, 0, 0, 10, 10, 0);
  EXPECT_THROW((void)construct_bool_expr(analysis, 0.0, {"A", "B"}),
               InvalidArgument);
  EXPECT_THROW((void)construct_bool_expr(analysis, 1.5, {"A", "B"}),
               InvalidArgument);
  EXPECT_THROW((void)construct_bool_expr(analysis, 0.25, {"A"}),
               InvalidArgument);
}

// --------------------------------------------------------------- baseline

TEST(Baseline, RulesDifferOnGlitchData) {
  // Figure 2 numbers again: any-high reads XNOR, the paper's rule reads AND.
  const auto analysis = stats2(1850, 3, 2, 3050, 1875, 7);
  EXPECT_EQ(extract_with_rule(analysis, BaselineRule::kAnyHigh, 0.25)
                .minterms(),
            (std::vector<std::size_t>{0, 3}));  // XNOR
  EXPECT_EQ(extract_with_rule(analysis, BaselineRule::kStabilityOnly, 0.25)
                .minterms(),
            (std::vector<std::size_t>{0, 3}));  // still XNOR
  EXPECT_EQ(extract_with_rule(analysis, BaselineRule::kMajorityOnly, 0.25)
                .minterms(),
            (std::vector<std::size_t>{3}));
  EXPECT_EQ(extract_with_rule(analysis, BaselineRule::kBothFilters, 0.25)
                .minterms(),
            (std::vector<std::size_t>{3}));
}

TEST(Baseline, MajorityOnlyAcceptsOscillatoryStreams) {
  // Figure 3: majority-high but maximally oscillatory.
  const auto analysis = stats2(100, 0, 0, 1000, 600, 799);
  EXPECT_TRUE(extract_with_rule(analysis, BaselineRule::kMajorityOnly, 0.5)
                  .output(3));
  EXPECT_FALSE(extract_with_rule(analysis, BaselineRule::kBothFilters, 0.5)
                   .output(3));
}

TEST(Baseline, NamesAreStable) {
  EXPECT_NE(baseline_rule_name(BaselineRule::kAnyHigh), std::string{});
  EXPECT_NE(baseline_rule_name(BaselineRule::kBothFilters),
            baseline_rule_name(BaselineRule::kMajorityOnly));
}

// --------------------------------------------------------------- analyzer

TEST(LogicAnalyzer, EndToEndOnSyntheticTrace) {
  // A perfect inverter trace: 200 samples low input/high output, then the
  // reverse.
  sim::Trace trace({"In", "Out"});
  for (int k = 0; k < 400; ++k) {
    const bool second_half = k >= 200;
    trace.append(k, {second_half ? 20.0 : 0.0, second_half ? 1.0 : 50.0});
  }
  const LogicAnalyzer analyzer(AnalyzerConfig{15.0, 0.25});
  const ExtractionResult result = analyzer.analyze(trace, {"In"}, "Out");
  EXPECT_EQ(result.expression(), "In'");
  EXPECT_DOUBLE_EQ(result.fitness(), 100.0);
  EXPECT_EQ(result.input_count, 1u);
  EXPECT_EQ(result.output_name, "Out");
}

TEST(LogicAnalyzer, ConfigIsValidated) {
  EXPECT_THROW(LogicAnalyzer(AnalyzerConfig{0.0, 0.25}), InvalidArgument);
  EXPECT_THROW(LogicAnalyzer(AnalyzerConfig{15.0, 0.0}), InvalidArgument);
  EXPECT_THROW(LogicAnalyzer(AnalyzerConfig{15.0, 2.0}), InvalidArgument);
}

TEST(LogicAnalyzer, BackendNamesRoundTrip) {
  EXPECT_EQ(parse_analysis_backend("packed"), AnalysisBackend::kPacked);
  EXPECT_EQ(parse_analysis_backend("reference"), AnalysisBackend::kReference);
  EXPECT_STREQ(analysis_backend_name(AnalysisBackend::kPacked), "packed");
  EXPECT_STREQ(analysis_backend_name(AnalysisBackend::kReference),
               "reference");
  EXPECT_THROW((void)parse_analysis_backend("simd"), InvalidArgument);
}

/// Everything downstream stages consume must agree bit for bit between the
/// two backends (the representations may differ only in cases.output_stream
/// materialization).
void expect_backend_equivalent(const ExtractionResult& packed,
                               const ExtractionResult& reference) {
  ASSERT_EQ(packed.variation.records.size(),
            reference.variation.records.size());
  for (std::size_t c = 0; c < reference.variation.records.size(); ++c) {
    const auto& r = reference.variation.records[c];
    const auto& p = packed.variation.records[c];
    EXPECT_EQ(p.case_count, r.case_count) << c;
    EXPECT_EQ(p.high_count, r.high_count) << c;
    EXPECT_EQ(p.variation_count, r.variation_count) << c;
    EXPECT_EQ(p.fov_est, r.fov_est) << c;
    EXPECT_EQ(packed.cases.cases[c].case_count,
              reference.cases.cases[c].case_count)
        << c;
    EXPECT_EQ(packed.construction.outcomes[c].verdict,
              reference.construction.outcomes[c].verdict)
        << c;
  }
  EXPECT_EQ(packed.extracted(), reference.extracted());
  EXPECT_EQ(packed.expression(), reference.expression());
  EXPECT_EQ(packed.fitness(), reference.fitness());
  EXPECT_EQ(packed.construction.unobserved, reference.construction.unobserved);
  EXPECT_EQ(packed.construction.unstable, reference.construction.unstable);
}

TEST(LogicAnalyzer, PackedAndReferenceBackendsAreBitIdentical) {
  // A noisy 2-input trace with glitches: sweep 4 combinations, output
  // follows AND with a transient at each phase boundary.
  sim::Rng rng(99);
  sim::Trace trace({"A", "B", "Y"});
  for (int k = 0; k < 2000; ++k) {
    const int combo = (k / 500) % 4;
    const bool a = (combo & 2) != 0;
    const bool b = (combo & 1) != 0;
    const bool high = a && b;
    const double noise = rng.normal() * 6.0;
    trace.append(k, {a ? 20.0 : 0.0, b ? 20.0 : 0.0,
                     (high ? 40.0 : 2.0) + noise});
  }
  const LogicAnalyzer packed(
      AnalyzerConfig{15.0, 0.25, AnalysisBackend::kPacked});
  const LogicAnalyzer reference(
      AnalyzerConfig{15.0, 0.25, AnalysisBackend::kReference});
  expect_backend_equivalent(packed.analyze(trace, {"A", "B"}, "Y"),
                            reference.analyze(trace, {"A", "B"}, "Y"));
}

TEST(LogicAnalyzer, AnalyzeDigitalAgreesAcrossBackends) {
  sim::Rng rng(7);
  DigitalData data;
  data.inputs.assign(2, {});
  for (int k = 0; k < 777; ++k) {
    data.inputs[0].push_back(rng.below(2) == 1);
    data.inputs[1].push_back(rng.below(2) == 1);
    data.output.push_back(rng.below(2) == 1);
  }
  const LogicAnalyzer packed(
      AnalyzerConfig{15.0, 0.25, AnalysisBackend::kPacked});
  const LogicAnalyzer reference(
      AnalyzerConfig{15.0, 0.25, AnalysisBackend::kReference});
  expect_backend_equivalent(packed.analyze_digital(data, {"A", "B"}, "Y"),
                            reference.analyze_digital(data, {"A", "B"}, "Y"));
  // The explicitly packed entry point agrees too.
  expect_backend_equivalent(
      packed.analyze_packed(pack(data), {"A", "B"}, "Y"),
      reference.analyze_digital(data, {"A", "B"}, "Y"));
}

// --------------------------------------------------------------- verifier

ExtractionResult extraction_for(const VariationAnalysis& analysis,
                                double fov_ud) {
  ExtractionResult result;
  result.input_count = analysis.input_count;
  result.input_names = {"A", "B"};
  result.output_name = "Y";
  result.variation = analysis;
  result.construction = construct_bool_expr(analysis, fov_ud, {"A", "B"});
  return result;
}

TEST(Verifier, ReportsWrongStatesWithVerdicts) {
  // Extracted AND; expected XOR -> wrong at 01, 10 (missed) and 11 (extra).
  const auto extraction = extraction_for(stats2(100, 0, 0, 100, 99, 1), 0.25);
  const auto report = verify(extraction, logic::TruthTable::xor_gate(2));
  EXPECT_FALSE(report.matches);
  ASSERT_EQ(report.wrong_states.size(), 3u);
  EXPECT_DOUBLE_EQ(report.error_percent, 75.0);
  // summarize prints the (wrong) extracted value per state: 01 and 10 read
  // low though XOR expects high; 11 read high though XOR expects low.
  const std::string text =
      summarize(report, logic::TruthTable::xor_gate(2));
  EXPECT_NE(text.find("01->0"), std::string::npos);
  EXPECT_NE(text.find("11->1"), std::string::npos);
}

TEST(Verifier, MatchReportsCleanly) {
  const auto extraction = extraction_for(stats2(100, 0, 0, 100, 99, 1), 0.25);
  const auto report = verify(extraction, logic::TruthTable::and_gate(2));
  EXPECT_TRUE(report.matches);
  EXPECT_EQ(summarize(report, logic::TruthTable::and_gate(2)), "MATCH");
  EXPECT_DOUBLE_EQ(report.error_percent, 0.0);
}

TEST(Verifier, InputCountMismatchThrows) {
  const auto extraction = extraction_for(stats2(100, 0, 0, 100, 99, 1), 0.25);
  EXPECT_THROW((void)verify(extraction, logic::TruthTable(3)),
               InvalidArgument);
}

// ----------------------------------------------------------------- report

TEST(Report, AnalyticsTableListsEveryCombination) {
  const auto extraction =
      extraction_for(stats2(1850, 3, 2, 3050, 1875, 7), 0.25);
  const std::string table = render_analytics_table(extraction);
  EXPECT_NE(table.find("00"), std::string::npos);
  EXPECT_NE(table.find("1850"), std::string::npos);
  EXPECT_NE(table.find("HIGH"), std::string::npos);
  const std::string csv = analytics_csv(extraction);
  EXPECT_NE(csv.find("case,case_count"), std::string::npos);
  EXPECT_NE(csv.find("11,3050,1875,7"), std::string::npos);
}

TEST(Report, BarsMarkAcceptedCombinations) {
  const auto extraction =
      extraction_for(stats2(1850, 3, 2, 3050, 1875, 7), 0.25);
  const std::string bars = render_analytics_bars(extraction);
  EXPECT_NE(bars.find("11 *"), std::string::npos);  // accepted-high marker
  EXPECT_NE(bars.find("Case_I"), std::string::npos);
  EXPECT_NE(bars.find("Var_O"), std::string::npos);
}

// The re-digitizing threshold sweep reuses one CombinationIndex across
// points whose clamped input streams digitize identically (PR 3 follow-up);
// its output must stay exactly what a per-point re-analysis produces.
TEST(ThresholdSweepRedigitize, SharedIndexLeavesSweepOutputUnchanged) {
  const auto spec = circuits::CircuitRepository::build("myers_and");
  core::ExperimentConfig config;
  config.total_time = 400.0;
  config.seed = 9;
  // Thresholds straddling the drive level (inputs applied at 15): {3, 10,
  // 15} digitize the clamped inputs identically, 40 zeroes them — two
  // index classes behind the scenes, four points of output.
  const std::vector<double> thresholds = {3.0, 10.0, 15.0, 40.0};

  const auto sweep =
      core::threshold_sweep_redigitize(spec, config, thresholds, 2);
  ASSERT_EQ(sweep.points.size(), thresholds.size());

  // Reference: the shared simulation re-analyzed point by point through
  // the generic analyzer entry (no index sharing).
  const auto base = core::run_experiment(spec, config);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    core::ExperimentConfig point_config = config;
    point_config.threshold = thresholds[i];
    point_config.input_high_level = config.high_level();
    const auto expected = core::reanalyze(spec, point_config, base.sweep);

    const auto& actual = sweep.points[i].result;
    EXPECT_EQ(actual.extraction.expression(),
              expected.extraction.expression())
        << "threshold " << thresholds[i];
    EXPECT_EQ(actual.extraction.fitness(), expected.extraction.fitness());
    EXPECT_EQ(actual.verification.matches, expected.verification.matches);
    ASSERT_EQ(actual.extraction.variation.records.size(),
              expected.extraction.variation.records.size());
    for (std::size_t c = 0;
         c < expected.extraction.variation.records.size(); ++c) {
      const auto& ra = actual.extraction.variation.records[c];
      const auto& re = expected.extraction.variation.records[c];
      EXPECT_EQ(ra.case_count, re.case_count);
      EXPECT_EQ(ra.high_count, re.high_count);
      EXPECT_EQ(ra.variation_count, re.variation_count);
      EXPECT_EQ(ra.fov_est, re.fov_est);
    }
  }

  // And the reuse path agrees with the reference backend's sweep.
  core::ExperimentConfig reference_config = config;
  reference_config.backend = core::AnalysisBackend::kReference;
  const auto reference_sweep =
      core::threshold_sweep_redigitize(spec, reference_config, thresholds, 1);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    EXPECT_EQ(sweep.points[i].result.extraction.expression(),
              reference_sweep.points[i].result.extraction.expression());
    EXPECT_EQ(sweep.points[i].result.extraction.fitness(),
              reference_sweep.points[i].result.extraction.fitness());
  }
}

}  // namespace
