// Unit tests for glva_math: expression trees, parsing, evaluation,
// compilation, and MathML I/O.

#include <gtest/gtest.h>

#include <cmath>

#include "math/expr.h"
#include "math/expr_parser.h"
#include "math/mathml.h"
#include "util/errors.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace {

using namespace glva::math;

double eval(const std::string& text, const Environment& env = {}) {
  return evaluate(*parse_expression(text), env);
}

// ------------------------------------------------------------------ parse

TEST(ExprParser, NumbersAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3"), 7.0);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3"), 9.0);
  EXPECT_DOUBLE_EQ(eval("2^3^2"), 512.0);   // right associative
  EXPECT_DOUBLE_EQ(eval("8 / 4 / 2"), 1.0); // left associative
  EXPECT_DOUBLE_EQ(eval("7 - 4 - 2"), 1.0);
}

TEST(ExprParser, UnarySigns) {
  EXPECT_DOUBLE_EQ(eval("-3"), -3.0);
  EXPECT_DOUBLE_EQ(eval("--3"), 3.0);
  EXPECT_DOUBLE_EQ(eval("2 * -3"), -6.0);
  EXPECT_DOUBLE_EQ(eval("-2^2"), -4.0);  // sign binds looser than power
}

TEST(ExprParser, ScientificNotation) {
  EXPECT_DOUBLE_EQ(eval("1.5e2"), 150.0);
  EXPECT_DOUBLE_EQ(eval("2E-3"), 0.002);
}

TEST(ExprParser, SymbolsResolveFromEnvironment) {
  const Environment env{{"GFP", 42.0}, {"k_1", 2.0}};
  EXPECT_DOUBLE_EQ(eval("GFP / k_1", env), 21.0);
}

TEST(ExprParser, UnboundSymbolThrows) {
  EXPECT_THROW(eval("missing"), glva::InvalidArgument);
}

TEST(ExprParser, Functions) {
  EXPECT_DOUBLE_EQ(eval("exp(0)"), 1.0);
  EXPECT_DOUBLE_EQ(eval("ln(exp(2))"), 2.0);
  EXPECT_DOUBLE_EQ(eval("log10(1000)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("sqrt(16)"), 4.0);
  EXPECT_DOUBLE_EQ(eval("abs(-5)"), 5.0);
  EXPECT_DOUBLE_EQ(eval("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(eval("ceil(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(eval("min(3, 1, 2)"), 1.0);
  EXPECT_DOUBLE_EQ(eval("max(3, 1, 2)"), 3.0);
}

TEST(ExprParser, HillFunction) {
  // hill(x, k, n) = x^n / (k^n + x^n)
  EXPECT_DOUBLE_EQ(eval("hill(8, 8, 2)"), 0.5);
  EXPECT_DOUBLE_EQ(eval("hill(0, 8, 2)"), 0.0);
  EXPECT_NEAR(eval("hill(16, 8, 2)"), 4.0 / 5.0, 1e-12);
  // Defined at the k = 0 boundary (no NaN propensities).
  EXPECT_DOUBLE_EQ(eval("hill(0, 0, 2)"), 0.0);
}

TEST(ExprParser, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_expression(""), glva::ParseError);
  EXPECT_THROW((void)parse_expression("1 +"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("(1"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("1 2"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("foo(1)"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("hill(1, 2)"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("min(1)"), glva::ParseError);
  EXPECT_THROW((void)parse_expression("@"), glva::ParseError);
}

// ------------------------------------------------------------------ print

TEST(Expr, PrintingUsesMinimalParentheses) {
  EXPECT_EQ(parse_expression("1 + 2 * 3")->to_string(), "1 + 2 * 3");
  EXPECT_EQ(parse_expression("(1 + 2) * 3")->to_string(), "(1 + 2) * 3");
  EXPECT_EQ(parse_expression("a - (b - c)")->to_string(), "a - (b - c)");
  EXPECT_EQ(parse_expression("a / (b * c)")->to_string(), "a / (b * c)");
}

TEST(Expr, PrintRoundTripPreservesValue) {
  const Environment env{{"x", 1.7}, {"y", 0.3}, {"K", 8.0}};
  for (const char* text :
       {"x + y * 2", "hill(x, K, 2.5) * (1 - y)", "-x^2 + exp(y)",
        "min(x, y, K) / max(x, 0.1)"}) {
    const auto once = parse_expression(text);
    const auto twice = parse_expression(once->to_string());
    EXPECT_NEAR(evaluate(*once, env), evaluate(*twice, env), 1e-12) << text;
  }
}

TEST(Expr, SymbolsAreSortedAndUnique) {
  const auto expr = parse_expression("b + a * b + hill(a, K, n)");
  EXPECT_EQ(expr->symbols(),
            (std::vector<std::string>{"K", "a", "b", "n"}));
}

TEST(Expr, StructuralEquality) {
  EXPECT_TRUE(parse_expression("a + 2")->equals(*parse_expression("a + 2")));
  EXPECT_FALSE(parse_expression("a + 2")->equals(*parse_expression("2 + a")));
  EXPECT_FALSE(parse_expression("a")->equals(*parse_expression("b")));
}

TEST(Expr, CallArityIsValidated) {
  EXPECT_THROW((void)Expr::call(Function::kHill, {Expr::number(1)}),
               glva::InvalidArgument);
  EXPECT_THROW((void)Expr::call(Function::kMin, {Expr::number(1)}),
               glva::InvalidArgument);
}

// --------------------------------------------------------------- compiled

TEST(CompiledExpr, MatchesTreeWalkingEvaluation) {
  const std::vector<std::string> names{"x", "y", "K"};
  const auto index = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    throw glva::InvalidArgument("unknown " + name);
  };
  const std::vector<double> values{1.7, 0.3, 8.0};
  const Environment env{{"x", 1.7}, {"y", 0.3}, {"K", 8.0}};

  for (const char* text :
       {"0.5 + x * y", "hill(x, K, 2.5)", "x^2 - -y", "min(x, y) + max(x, y, K)",
        "exp(-y) / (1 + x)", "floor(x) + ceil(y) + abs(-x)",
        "ln(K) + log10(K) + sqrt(K)"}) {
    const auto expr = parse_expression(text);
    const CompiledExpr compiled(*expr, index);
    EXPECT_NEAR(compiled.evaluate(values), evaluate(*expr, env), 1e-12) << text;
  }
}

TEST(CompiledExpr, TracksDependencies) {
  const auto index = [](const std::string& name) -> std::size_t {
    return name == "a" ? 0 : (name == "b" ? 1 : 2);
  };
  const CompiledExpr compiled(*parse_expression("a * 2 + hill(b, b, 2)"), index);
  EXPECT_EQ(compiled.dependencies(), (std::vector<std::size_t>{0, 1}));
}

TEST(CompiledExpr, UnknownSymbolFailsAtCompileTime) {
  const auto index = [](const std::string&) -> std::size_t {
    throw glva::InvalidArgument("nope");
  };
  EXPECT_THROW(CompiledExpr(*parse_expression("x"), index),
               glva::InvalidArgument);
}

// ----------------------------------------------------------------- MathML

TEST(MathML, WritesAndReadsBack) {
  const Environment env{{"S", 12.0}, {"K", 8.0}};
  for (const char* text :
       {"1 + S", "S * K - 3", "S / K", "S^2", "-S", "exp(S) + ln(K)",
        "min(S, K) + max(S, K)", "abs(-S) + floor(S) + ceil(S)", "sqrt(K)",
        "log10(K)"}) {
    const auto expr = parse_expression(text);
    const auto math = to_mathml(*expr);
    const auto back = from_mathml(*math);
    EXPECT_NEAR(evaluate(*expr, env), evaluate(*back, env), 1e-12) << text;
  }
}

TEST(MathML, HillExpandsToPlainMathML) {
  const auto math = to_mathml(*parse_expression("hill(S, 8, 2)"));
  const std::string doc = glva::xml::write_document(*math);
  EXPECT_EQ(doc.find("hill"), std::string::npos);  // no custom symbols
  const auto back = from_mathml(*math);
  const Environment env{{"S", 8.0}};
  EXPECT_DOUBLE_EQ(evaluate(*back, env), 0.5);
}

TEST(MathML, ReadsNaryPlusAndTimes) {
  const auto node = glva::xml::parse_document(
      "<math><apply><plus/><cn>1</cn><cn>2</cn><cn>3</cn></apply></math>");
  EXPECT_DOUBLE_EQ(evaluate(*from_mathml(*node), {}), 6.0);
  const auto node2 = glva::xml::parse_document(
      "<math><apply><times/><cn>2</cn><cn>3</cn><cn>4</cn></apply></math>");
  EXPECT_DOUBLE_EQ(evaluate(*from_mathml(*node2), {}), 24.0);
}

TEST(MathML, ReadsUnaryMinus) {
  const auto node = glva::xml::parse_document(
      "<math><apply><minus/><ci>x</ci></apply></math>");
  EXPECT_DOUBLE_EQ(evaluate(*from_mathml(*node), {{"x", 3.0}}), -3.0);
}

TEST(MathML, ReadsENotation) {
  const auto node = glva::xml::parse_document(
      "<math><cn type=\"e-notation\">1.5<sep/>2</cn></math>");
  EXPECT_DOUBLE_EQ(evaluate(*from_mathml(*node), {}), 150.0);
}

TEST(MathML, ReadsLogWithBaseAndRootWithDegree) {
  const auto log2 = glva::xml::parse_document(
      "<math><apply><log/><logbase><cn>2</cn></logbase><cn>8</cn></apply>"
      "</math>");
  EXPECT_NEAR(evaluate(*from_mathml(*log2), {}), 3.0, 1e-12);
  const auto cbrt = glva::xml::parse_document(
      "<math><apply><root/><degree><cn>3</cn></degree><cn>27</cn></apply>"
      "</math>");
  EXPECT_NEAR(evaluate(*from_mathml(*cbrt), {}), 3.0, 1e-12);
}

TEST(MathML, RejectsUnsupportedContent) {
  const auto bad1 = glva::xml::parse_document(
      "<math><apply><sin/><cn>1</cn></apply></math>");
  EXPECT_THROW((void)from_mathml(*bad1), glva::ParseError);
  const auto bad2 = glva::xml::parse_document("<math><cn>abc</cn></math>");
  EXPECT_THROW((void)from_mathml(*bad2), glva::ParseError);
  const auto bad3 = glva::xml::parse_document("<math><apply/></math>");
  EXPECT_THROW((void)from_mathml(*bad3), glva::ParseError);
  const auto bad4 =
      glva::xml::parse_document("<math><ci>a</ci><ci>b</ci></math>");
  EXPECT_THROW((void)from_mathml(*bad4), glva::ParseError);
}

}  // namespace
