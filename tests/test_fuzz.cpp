// Robustness/fuzz tests: malformed and adversarial inputs must produce
// clean glva exceptions — never crashes, hangs, or silent garbage. Seeds
// are fixed so any failure is reproducible.

#include <gtest/gtest.h>

#include <string>

#include "math/expr_parser.h"
#include "sbml/reader.h"
#include "sbml/validate.h"
#include "sbol/sbol_io.h"
#include "sim/rng.h"
#include "util/csv.h"
#include "util/errors.h"
#include "xml/xml_parser.h"

namespace {

using namespace glva;

/// Random byte strings biased toward XML-ish characters.
std::string random_noise(sim::Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] =
      "<>/=\"' abcdefgzXML&;#x0123!?-[]\n\tsbml:model";
  const std::size_t len = rng.below(max_len);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return s;
}

/// Mutate a valid document by deleting/duplicating/flipping a span.
std::string mutate(sim::Rng& rng, std::string doc) {
  if (doc.empty()) return doc;
  const std::size_t pos = rng.below(doc.size());
  const std::size_t span = 1 + rng.below(8);
  switch (rng.below(3)) {
    case 0:
      doc.erase(pos, span);
      break;
    case 1:
      doc.insert(pos, doc.substr(pos, span));
      break;
    default:
      for (std::size_t i = pos; i < std::min(doc.size(), pos + span); ++i) {
        doc[i] = static_cast<char>('!' + rng.below(90));
      }
      break;
  }
  return doc;
}

constexpr const char* kValidSbml = R"(<?xml version="1.0" encoding="UTF-8"?>
<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core" level="3" version="1">
  <model id="m">
    <listOfCompartments><compartment id="cell" size="1" constant="true"/></listOfCompartments>
    <listOfSpecies>
      <species id="In" compartment="cell" initialAmount="0" boundaryCondition="true" constant="false" hasOnlySubstanceUnits="true"/>
      <species id="Out" compartment="cell" initialAmount="0" boundaryCondition="false" constant="false" hasOnlySubstanceUnits="true"/>
    </listOfSpecies>
    <listOfParameters><parameter id="k" value="0.5" constant="true"/></listOfParameters>
    <listOfReactions>
      <reaction id="prod" reversible="false">
        <listOfProducts><speciesReference species="Out" stoichiometry="1" constant="true"/></listOfProducts>
        <kineticLaw><math xmlns="http://www.w3.org/1998/Math/MathML"><ci>k</ci></math></kineticLaw>
      </reaction>
    </listOfReactions>
  </model>
</sbml>)";

TEST(Fuzz, XmlParserNeverCrashesOnNoise) {
  sim::Rng rng(90001);
  std::size_t parsed = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string noise = random_noise(rng, 200);
    try {
      const auto node = xml::parse_document(noise);
      ++parsed;  // syntactically valid by chance — fine
      (void)node;
    } catch (const ParseError&) {
      // expected
    }
  }
  // Pure noise essentially never parses.
  EXPECT_LT(parsed, 5u);
}

TEST(Fuzz, SbmlReaderSurvivesMutatedDocuments) {
  sim::Rng rng(90002);
  std::size_t accepted = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const std::string doc = mutate(rng, kValidSbml);
    try {
      const auto model = sbml::read_sbml(doc);
      ++accepted;  // structurally tolerable mutation
      (void)model;
    } catch (const ParseError&) {
    } catch (const ValidationError&) {
    }
  }
  // Some single-char mutations (attribute values, ignorable content) stay
  // readable; most break the document.
  EXPECT_LT(accepted, 700u);
}

TEST(Fuzz, SbmlReaderAcceptsTheUnmutatedBaseline) {
  const auto model = sbml::read_sbml(kValidSbml);
  EXPECT_EQ(model.species.size(), 2u);
  EXPECT_TRUE(sbml::is_valid(sbml::validate(model)));
}

TEST(Fuzz, ExpressionParserNeverCrashes) {
  sim::Rng rng(90003);
  static const char kExprChars[] = "0123456789.+-*/^()abcxyz_, hilmnex";
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t len = rng.below(40);
    std::string text;
    for (std::size_t i = 0; i < len; ++i) {
      text += kExprChars[rng.below(sizeof(kExprChars) - 1)];
    }
    try {
      const auto expr = math::parse_expression(text);
      // If it parsed, printing and reparsing must agree.
      const auto round = math::parse_expression(expr->to_string());
      EXPECT_TRUE(true);
      (void)round;
    } catch (const ParseError&) {
    } catch (const InvalidArgument&) {
    }
  }
}

TEST(Fuzz, SbolReaderSurvivesMutations) {
  const std::string valid = sbol::write_design(
      [] {
        sbol::Design design;
        design.id = "d";
        design.parts = {{"In", sbol::PartType::kSmallMolecule, ""},
                        {"P", sbol::PartType::kProtein, ""},
                        {"pIn", sbol::PartType::kPromoter, ""},
                        {"r", sbol::PartType::kRbs, ""},
                        {"c", sbol::PartType::kCds, ""},
                        {"t", sbol::PartType::kTerminator, ""}};
        design.units = {{"tu", {"pIn", "r", "c", "t"}, "P", ""}};
        design.interactions = {
            {"i1", sbol::InteractionKind::kRepression, "In", "pIn"},
            {"i2", sbol::InteractionKind::kGeneticProduction, "tu", "P"}};
        design.inputs = {"In"};
        design.output = "P";
        return design;
      }());
  sim::Rng rng(90004);
  for (int trial = 0; trial < 800; ++trial) {
    try {
      const auto design = sbol::read_design(mutate(rng, valid));
      design.check();
    } catch (const ParseError&) {
    } catch (const ValidationError&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, CsvParserNeverCrashes) {
  sim::Rng rng(90005);
  static const char kCsvChars[] = "a,\"\n\r;x1";
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.below(60);
    std::string text;
    for (std::size_t i = 0; i < len; ++i) {
      text += kCsvChars[rng.below(sizeof(kCsvChars) - 1)];
    }
    try {
      const auto rows = util::parse_csv(text);
      (void)rows;
    } catch (const ParseError&) {
    }
  }
  SUCCEED();
}

TEST(Fuzz, DeeplyNestedXmlParsesOrFailsCleanly) {
  // 2000-deep nesting: recursion depth must stay manageable (the parser
  // recurses per level; this bounds the acceptable document depth).
  std::string doc;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) doc += "<a>";
  for (int i = 0; i < kDepth; ++i) doc += "</a>";
  EXPECT_NO_THROW((void)xml::parse_document(doc));
}

TEST(Fuzz, HugeAttributeAndTextNodes) {
  const std::string big(1 << 20, 'x');  // 1 MiB
  const auto doc = xml::parse_document("<a v=\"" + big + "\">" + big + "</a>");
  EXPECT_EQ(doc->attribute("v")->size(), big.size());
  EXPECT_EQ(doc->text_content().size(), big.size());
}

}  // namespace
