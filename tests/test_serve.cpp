// Tests for the `glva serve` subsystem: framed codec (including
// truncation, oversize, and garbage inputs), the request schema, cache
// key canonicalization, the LRU result cache, FIFO admission control,
// and end-to-end daemon behaviour — above all that a daemon response
// body is byte-identical to the CLI output for the same flags.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "app/commands.h"
#include "app/request.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/server.h"

namespace {

using glva::app::Request;
using glva::app::run_cli;
using glva::serve::AdmissionController;
using glva::serve::FrameDecoder;
using glva::serve::Json;
using glva::serve::ProtocolError;
using glva::serve::ResultCache;
using glva::serve::Server;
using glva::serve::ServerOptions;
using glva::serve::WireRequest;

std::string cli_stdout(const std::vector<std::string>& args,
                       int expected_code) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(args, out, err);
  EXPECT_EQ(code, expected_code) << err.str();
  return out.str();
}

// ---------------------------------------------------------------------------
// Framed codec
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsPayloads) {
  FrameDecoder decoder;
  const std::string frame = glva::serve::encode_frame("hello");
  ASSERT_EQ(frame.size(), 9u);
  decoder.feed(frame.data(), frame.size());
  const auto payload = decoder.take_frame();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(decoder.take_frame().has_value());
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodec, EmptyPayloadFrame) {
  FrameDecoder decoder;
  const std::string frame = glva::serve::encode_frame("");
  decoder.feed(frame.data(), frame.size());
  const auto payload = decoder.take_frame();
  ASSERT_TRUE(payload.has_value());
  EXPECT_TRUE(payload->empty());
}

TEST(FrameCodec, ByteAtATimeDelivery) {
  FrameDecoder decoder;
  const std::string stream = glva::serve::encode_frame("first") +
                             glva::serve::encode_frame("") +
                             glva::serve::encode_frame("third");
  std::vector<std::string> frames;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.take_frame()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], "first");
  EXPECT_EQ(frames[1], "");
  EXPECT_EQ(frames[2], "third");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameCodec, TruncatedFrameStaysPending) {
  FrameDecoder decoder;
  const std::string frame = glva::serve::encode_frame("truncated");
  decoder.feed(frame.data(), frame.size() - 3);
  EXPECT_FALSE(decoder.take_frame().has_value());
  EXPECT_GT(decoder.pending_bytes(), 0u);
  // Completing the frame releases it.
  decoder.feed(frame.data() + frame.size() - 3, 3);
  const auto payload = decoder.take_frame();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "truncated");
}

TEST(FrameCodec, PartialLengthPrefixStaysPending) {
  FrameDecoder decoder;
  const char two_bytes[] = {0x05, 0x00};
  decoder.feed(two_bytes, 2);
  EXPECT_FALSE(decoder.take_frame().has_value());
  EXPECT_EQ(decoder.pending_bytes(), 2u);
}

TEST(FrameCodec, OversizeLengthRejectedBeforeBuffering) {
  FrameDecoder decoder(16);
  // Length prefix claims 1 MiB: must throw as soon as the prefix is
  // readable, without waiting for (or buffering) the payload.
  const char prefix[] = {0x00, 0x00, 0x10, 0x00};
  EXPECT_THROW(decoder.feed(prefix, 4), ProtocolError);
}

TEST(FrameCodec, OversizeSecondFrameRejectedAtTakeTime) {
  FrameDecoder decoder(16);
  const std::string good = glva::serve::encode_frame("ok");
  std::string stream = good;
  const char prefix[] = {0x00, 0x00, 0x10, 0x00};
  stream.append(prefix, 4);
  // The hostile prefix rides in the same read as the good frame.
  EXPECT_THROW(
      {
        decoder.feed(stream.data(), stream.size());
        while (decoder.take_frame().has_value()) {
        }
      },
      ProtocolError);
}

TEST(FrameCodec, GarbagePayloadIsAJsonError) {
  EXPECT_THROW(glva::serve::parse_json("\x01\x02garbage"), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json(""), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("{\"op\":"), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("{} trailing"), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("01"), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("\"unterminated"), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("\"bad \\q escape\""), ProtocolError);
  EXPECT_THROW(glva::serve::parse_json("\"lone \\ud800 surrogate\""),
               ProtocolError);
  std::string deep(100, '[');
  EXPECT_THROW(glva::serve::parse_json(deep), ProtocolError);
}

TEST(FrameCodec, JsonRoundTripPreservesNumberTokens) {
  // A full-range u64 seed must survive parse → dump byte-for-byte (a
  // double would corrupt it).
  const std::string doc = "{\"seed\":18446744073709551615,\"x\":-1.25e3}";
  EXPECT_EQ(glva::serve::parse_json(doc).dump(), doc);
}

TEST(FrameCodec, JsonStringEscapes) {
  const Json parsed =
      glva::serve::parse_json("\"a\\n\\t\\\"b\\\\\\u0041\\u00e9\"");
  EXPECT_EQ(parsed.string, "a\n\t\"b\\A\xC3\xA9");
  // Control characters re-escape on dump.
  EXPECT_EQ(Json::of(std::string("x\ny")).dump(), "\"x\\ny\"");
}

// ---------------------------------------------------------------------------
// Request schema
// ---------------------------------------------------------------------------

TEST(WireSchema, ParsesArgvStyleOptions) {
  const WireRequest wire = glva::serve::parse_wire_request(
      glva::serve::parse_json("{\"op\":\"verify\",\"target\":\"0x0B\","
                              "\"options\":[\"--seed\",\"7\"],\"id\":3}"));
  EXPECT_EQ(wire.op, "verify");
  EXPECT_EQ(wire.target, "0x0B");
  ASSERT_EQ(wire.options.size(), 2u);
  EXPECT_EQ(wire.options[0], "--seed");
  EXPECT_EQ(wire.options[1], "7");
  EXPECT_EQ(wire.id.dump(), "3");
}

TEST(WireSchema, FlattensOptionObjects) {
  const WireRequest wire = glva::serve::parse_wire_request(
      glva::serve::parse_json("{\"op\":\"ensemble\",\"target\":\"0x1\","
                              "\"options\":{\"seed\":42,\"two-stage\":true,"
                              "\"redigitize\":false,\"method\":\"direct\"}}"));
  const std::vector<std::string> expected = {"--seed", "42", "--two-stage",
                                             "--method", "direct"};
  EXPECT_EQ(wire.options, expected);
}

TEST(WireSchema, RejectsSchemaViolations) {
  using glva::serve::parse_wire_request;
  EXPECT_THROW(parse_wire_request(glva::serve::parse_json("[]")),
               ProtocolError);
  EXPECT_THROW(parse_wire_request(glva::serve::parse_json("{}")),
               ProtocolError);
  EXPECT_THROW(parse_wire_request(
                   glva::serve::parse_json("{\"op\":\"verify\",\"options\":"
                                           "\"--seed 7\"}")),
               ProtocolError);
  EXPECT_THROW(parse_wire_request(glva::serve::parse_json(
                   "{\"op\":\"verify\",\"options\":[7]}")),
               ProtocolError);
  EXPECT_THROW(parse_wire_request(glva::serve::parse_json(
                   "{\"op\":\"verify\",\"id\":[1]}")),
               ProtocolError);
}

// ---------------------------------------------------------------------------
// Cache key canonicalization
// ---------------------------------------------------------------------------

Request make_request(const std::vector<std::string>& options,
                     Request::Op op = Request::Op::kVerify,
                     const std::string& target = "0x0B") {
  return glva::app::parse_request(op, target, options);
}

TEST(CanonicalKey, FlagOrderAndSpelledDefaultsHashIdentically) {
  const Request terse = make_request({"--seed", "7"});
  const Request spelled = make_request(
      {"--threshold", "15", "--method", "direct", "--seed", "7",
       "--backend", "packed", "--fov-ud", "0.25", "--sink", "mem",
       "--total-time", "10000", "--sampling-period", "1"});
  EXPECT_EQ(glva::app::canonical_key(terse),
            glva::app::canonical_key(spelled));
  EXPECT_EQ(glva::app::request_fingerprint(terse),
            glva::app::request_fingerprint(spelled));
}

TEST(CanonicalKey, EverySemanticFieldChangesTheKey) {
  const std::string base = glva::app::canonical_key(make_request({}));
  const std::vector<std::vector<std::string>> variants = {
      {"--seed", "2"},
      {"--threshold", "16"},
      {"--fov-ud", "0.3"},
      {"--total-time", "9999"},
      {"--sampling-period", "2"},
      {"--method", "next-reaction"},
      {"--backend", "reference"},
      {"--sink", "digitize"},
      {"--two-stage"},
      {"--no-timings"},
  };
  for (const auto& options : variants) {
    EXPECT_NE(glva::app::canonical_key(make_request(options)), base)
        << "option set did not change the key: " << options.front();
  }
  // Different target and different op change the key too.
  EXPECT_NE(glva::app::canonical_key(
                make_request({}, Request::Op::kVerify, "0x1")),
            base);
  EXPECT_NE(glva::app::canonical_key(make_request(
                {"--thresholds", "15"}, Request::Op::kSweep)),
            base);
  // Check requests: the property list and the PASS threshold are
  // semantic; property spelling is canonicalized before keying.
  const std::string check_base = glva::app::canonical_key(
      make_request({"--property", "G GFP"}, Request::Op::kCheck));
  EXPECT_NE(glva::app::canonical_key(
                make_request({"--property", "F GFP"}, Request::Op::kCheck)),
            check_base);
  EXPECT_NE(glva::app::canonical_key(make_request(
                {"--property", "G GFP", "--min-satisfaction", "0.9"},
                Request::Op::kCheck)),
            check_base);
  EXPECT_EQ(glva::app::canonical_key(
                make_request({"--property", "G(GFP)"}, Request::Op::kCheck)),
            check_base);
}

TEST(CanonicalKey, PlacementOnlyFieldsAreExcluded) {
  // spill_dir moves scratch files; it cannot change a response byte.
  const Request a = make_request({"--sink", "spill", "--spill-dir", "/tmp/a"});
  const Request b = make_request({"--sink", "spill", "--spill-dir", "/tmp/b"});
  EXPECT_EQ(glva::app::canonical_key(a), glva::app::canonical_key(b));
}

TEST(CanonicalKey, ThresholdGridIsExact) {
  const auto key = [](const std::string& grid) {
    return glva::app::canonical_key(
        make_request({"--thresholds", grid}, Request::Op::kSweep));
  };
  EXPECT_EQ(key("3,15,40"), key(" 3 , 15 , 40 "));
  EXPECT_NE(key("3,15,40"), key("3,15"));
  EXPECT_NE(key("3,15,40"), key("3,15.0000001,40"));
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ResultCacheTest, HitMissAndCounters) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", 0, "body-a");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->exit_code, 0);
  EXPECT_EQ(hit->body, "body-a");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, LruEvictionUnderByteBudget) {
  // Budget for two entries (each costs ~160 + key + body).
  ResultCache cache(500);
  cache.put("k1", 0, std::string(32, 'a'));
  cache.put("k2", 0, std::string(32, 'b'));
  // Touch k1 so k2 is the LRU victim.
  EXPECT_TRUE(cache.get("k1").has_value());
  cache.put("k3", 0, std::string(32, 'c'));
  EXPECT_TRUE(cache.get("k1").has_value());
  EXPECT_FALSE(cache.get("k2").has_value());
  EXPECT_TRUE(cache.get("k3").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, 500u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesAndOversizeIsSkipped) {
  ResultCache disabled(0);
  disabled.put("k", 0, "body");
  EXPECT_FALSE(disabled.get("k").has_value());
  EXPECT_EQ(disabled.stats().entries, 0u);

  ResultCache small(200);
  small.put("big", 0, std::string(4096, 'x'));  // larger than the budget
  EXPECT_FALSE(small.get("big").has_value());
  EXPECT_EQ(small.stats().entries, 0u);
  EXPECT_EQ(small.stats().evictions, 0u);
}

TEST(ResultCacheTest, ReinsertOnlyRefreshes) {
  ResultCache cache(1 << 20);
  cache.put("k", 0, "body");
  cache.put("k", 0, "body");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(Admission, DepthOneQueueRejectsExcessImmediately) {
  AdmissionController controller({/*max_active=*/1, /*max_queued=*/0});
  auto first = controller.try_admit();
  ASSERT_TRUE(first.has_value());
  // One slot, zero queue: the second arrival must be rejected without
  // blocking.
  EXPECT_FALSE(controller.try_admit().has_value());
  EXPECT_EQ(controller.stats().rejected, 1u);
  first.reset();  // release
  auto second = controller.try_admit();
  EXPECT_TRUE(second.has_value());
  const auto stats = controller.stats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(Admission, FifoGrantOrder) {
  AdmissionController controller({/*max_active=*/1, /*max_queued=*/3});
  auto holder = controller.try_admit();
  ASSERT_TRUE(holder.has_value());

  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<std::thread> waiters;
  for (int i = 1; i <= 3; ++i) {
    waiters.emplace_back([&, i] {
      auto ticket = controller.try_admit();
      ASSERT_TRUE(ticket.has_value());
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
      // Ticket released at scope end: the next waiter is granted only
      // after this one finishes, so `order` records the grant order.
    });
    // Sequence arrivals: wait until waiter i is queued before spawning
    // the next, so ticket numbers match spawn order.
    while (controller.stats().queued <
           static_cast<std::size_t>(i)) {
      std::this_thread::yield();
    }
  }
  EXPECT_EQ(controller.stats().peak_queued, 3u);
  holder.reset();  // open the flood gate
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(controller.stats().admitted, 4u);
}

TEST(Admission, CloseDrainsWaitersAndRejectsArrivals) {
  AdmissionController controller({/*max_active=*/1, /*max_queued=*/4});
  auto holder = controller.try_admit();
  ASSERT_TRUE(holder.has_value());
  std::atomic<int> drained{0};
  std::thread waiter([&] {
    EXPECT_FALSE(controller.try_admit().has_value());
    drained.fetch_add(1);
  });
  while (controller.stats().queued < 1) std::this_thread::yield();
  controller.close();
  waiter.join();
  EXPECT_EQ(drained.load(), 1);
  EXPECT_FALSE(controller.try_admit().has_value());
}

// ---------------------------------------------------------------------------
// End to end: dispatch + daemon/CLI byte identity
// ---------------------------------------------------------------------------

std::string analysis_payload(const std::string& op, const std::string& target,
                             std::vector<std::string> options) {
  std::vector<Json> items;
  items.reserve(options.size());
  for (auto& option : options) items.push_back(Json::of(std::move(option)));
  return Json::object_of({{"op", Json::of(op)},
                          {"target", Json::of(target)},
                          {"options", Json::array_of(std::move(items))},
                          {"id", Json::of_u64(1)}})
      .dump();
}

struct ParsedResponse {
  bool ok = false;
  bool cached = false;
  int exit_code = -1;
  std::string body;
  std::string error_kind;
};

ParsedResponse parse_response(const std::string& payload) {
  const Json json = glva::serve::parse_json(payload);
  ParsedResponse response;
  if (const Json* ok = json.find("ok")) response.ok = ok->boolean;
  if (const Json* cached = json.find("cached")) {
    response.cached = cached->boolean;
  }
  if (const Json* code = json.find("exit_code")) {
    response.exit_code = std::stoi(code->number);
  }
  if (const Json* body = json.find("body")) response.body = body->string;
  if (const Json* error = json.find("error")) {
    if (const Json* kind = error->find("kind")) {
      response.error_kind = kind->string;
    }
  }
  return response;
}

ServerOptions small_server_options() {
  ServerOptions options;
  options.jobs = 2;
  return options;
}

TEST(ServeEndToEnd, VerifyBodyIsByteIdenticalToCli) {
  // 0x0B needs ~4000 tu to settle into the intended logic (exit 0).
  const std::vector<std::string> flags = {"--total-time", "4000", "--seed",
                                          "7", "--no-timings"};
  std::vector<std::string> cli_args = {"verify", "0x0B"};
  cli_args.insert(cli_args.end(), flags.begin(), flags.end());
  const std::string cli_output = cli_stdout(cli_args, 0);

  Server server(small_server_options());
  const ParsedResponse response =
      parse_response(server.dispatch(analysis_payload("verify", "0x0B", flags)));
  ASSERT_TRUE(response.ok);
  EXPECT_FALSE(response.cached);
  EXPECT_EQ(response.exit_code, 0);
  EXPECT_EQ(response.body, cli_output);
}

TEST(ServeEndToEnd, EnsembleBodyIsByteIdenticalToCli) {
  const std::vector<std::string> flags = {"--replicates", "3", "--total-time",
                                          "2000", "--seed", "42"};
  std::vector<std::string> cli_args = {"ensemble", "0x1", "--jobs", "2"};
  cli_args.insert(cli_args.end(), flags.begin(), flags.end());
  const std::string cli_output = cli_stdout(cli_args, 0);

  Server server(small_server_options());
  const ParsedResponse response = parse_response(
      server.dispatch(analysis_payload("ensemble", "0x1", flags)));
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.body, cli_output);
}

TEST(ServeEndToEnd, SweepBodyIsByteIdenticalToCli) {
  const std::vector<std::string> flags = {"--thresholds", "3,15",
                                          "--total-time", "300"};
  std::vector<std::string> cli_args = {"sweep", "0x0B", "--jobs", "2"};
  cli_args.insert(cli_args.end(), flags.begin(), flags.end());
  const std::string cli_output = cli_stdout(cli_args, 1);

  Server server(small_server_options());
  const ParsedResponse response = parse_response(
      server.dispatch(analysis_payload("sweep", "0x0B", flags)));
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.exit_code, 1);  // thresholds 3 breaks the logic
  EXPECT_EQ(response.body, cli_output);
}

TEST(ServeEndToEnd, CheckBodyIsByteIdenticalToCli) {
  const std::vector<std::string> flags = {
      "--property", "(C->F[0,400]GFP)&noglitch[5]GFP", "--replicates", "2",
      "--total-time", "4000", "--min-satisfaction", "0.5", "--seed", "42"};
  std::vector<std::string> cli_args = {"check", "0x0B", "--jobs", "2"};
  cli_args.insert(cli_args.end(), flags.begin(), flags.end());
  const std::string cli_output = cli_stdout(cli_args, 0);

  Server server(small_server_options());
  const ParsedResponse response = parse_response(
      server.dispatch(analysis_payload("check", "0x0B", flags)));
  ASSERT_TRUE(response.ok);
  EXPECT_FALSE(response.cached);
  EXPECT_EQ(response.exit_code, 0);
  EXPECT_EQ(response.body, cli_output);
  // Spelling variants of the same property share a cache line: the
  // canonical property text keys the request, not the typed spelling.
  const ParsedResponse respelled = parse_response(server.dispatch(
      analysis_payload("check", "0x0B",
                       {"--property", "( C -> F[0,400] GFP )&noglitch[5] GFP",
                        "--replicates", "2", "--total-time", "4000",
                        "--min-satisfaction", "0.5", "--seed", "42"})));
  ASSERT_TRUE(respelled.ok);
  EXPECT_TRUE(respelled.cached);
  EXPECT_EQ(respelled.body, cli_output);
}

TEST(ServeEndToEnd, SecondIdenticalRequestIsACacheHit) {
  Server server(small_server_options());
  const std::string payload = analysis_payload(
      "verify", "0x0B", {"--total-time", "400", "--no-timings"});
  const ParsedResponse first = parse_response(server.dispatch(payload));
  const ParsedResponse second = parse_response(server.dispatch(payload));
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.body, second.body);
  EXPECT_EQ(server.cache_stats().hits, 1u);
  // Equivalent spelling (defaults written out, different flag order) hits
  // the same cache line.
  const ParsedResponse respelled = parse_response(server.dispatch(
      analysis_payload("verify", "0x0B",
                       {"--no-timings", "--seed", "1", "--threshold", "15",
                        "--total-time", "400"})));
  ASSERT_TRUE(respelled.ok);
  EXPECT_TRUE(respelled.cached);
  EXPECT_EQ(respelled.body, first.body);
}

TEST(ServeEndToEnd, ErrorsCarryStructuredKinds) {
  Server server(small_server_options());
  EXPECT_EQ(parse_response(server.dispatch("not json")).error_kind,
            "protocol");
  EXPECT_EQ(parse_response(server.dispatch("{\"op\":\"dance\"}")).error_kind,
            "invalid_argument");
  EXPECT_EQ(parse_response(
                server.dispatch("{\"op\":\"verify\"}"))  // missing target
                .error_kind,
            "protocol");
  EXPECT_EQ(parse_response(server.dispatch(analysis_payload(
                                "verify", "0x0B", {"--method", "psychic"})))
                .error_kind,
            "invalid_argument");
  EXPECT_EQ(parse_response(server.dispatch(analysis_payload(
                                "verify", "no-such-circuit", {})))
                .error_kind,
            "invalid_argument");
}

TEST(ServeEndToEnd, StatusAndVersionOps) {
  Server server(small_server_options());
  static_cast<void>(server.dispatch(analysis_payload(
      "verify", "0x0B", {"--total-time", "400", "--no-timings"})));

  const Json status = glva::serve::parse_json(
      server.dispatch(Json::object_of({{"op", Json::of("status")}}).dump()));
  const Json* result = status.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->find("cache"), nullptr);
  EXPECT_EQ(result->find("cache")->find("insertions")->number, "1");
  EXPECT_EQ(result->find("requests")->find("executed")->number, "1");
  EXPECT_EQ(result->find("jobs")->number, "2");

  const ParsedResponse version = parse_response(
      server.dispatch(Json::object_of({{"op", Json::of("version")}}).dump()));
  ASSERT_TRUE(version.ok);
  EXPECT_NE(version.body.find("glva "), std::string::npos);
  EXPECT_NE(version.body.find("simd active:"), std::string::npos);
}

TEST(ServeEndToEnd, StatsOpReturnsMetricsSnapshot) {
  Server server(small_server_options());
  static_cast<void>(server.dispatch(analysis_payload(
      "verify", "0x0B", {"--total-time", "400", "--no-timings"})));

  const Json stats = glva::serve::parse_json(
      server.dispatch(Json::object_of({{"op", Json::of("stats")}}).dump()));
  ASSERT_NE(stats.find("ok"), nullptr);
  EXPECT_TRUE(stats.find("ok")->boolean);
  const Json* result = stats.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_TRUE(result->is_object());

  // The schema is stable even under GLVA_NO_METRICS: every section is
  // present, just empty, with metrics_enabled flagging the build.
  const Json* enabled = result->find("metrics_enabled");
  ASSERT_NE(enabled, nullptr);
  EXPECT_EQ(enabled->kind, Json::Kind::kBool);
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const Json* member = result->find(section);
    ASSERT_NE(member, nullptr) << section;
    EXPECT_TRUE(member->is_object()) << section;
  }

  if (glva::obs::metrics_enabled()) {
    EXPECT_TRUE(enabled->boolean);
    // Counters are process-global across tests, so assert presence and
    // lower bounds rather than exact values.
    const Json* counters = result->find("counters");
    for (const char* name :
         {"serve.requests.received", "serve.requests.executed",
          "serve.cache.misses", "serve.cache.insertions"}) {
      const Json* value = counters->find(name);
      ASSERT_NE(value, nullptr) << name;
      EXPECT_GE(std::stoull(value->number), 1u) << name;
    }
    const Json* verify_latency =
        result->find("histograms")->find("serve.latency_us.verify");
    ASSERT_NE(verify_latency, nullptr);
    for (const char* field : {"count", "sum", "p50", "p95", "p99"}) {
      EXPECT_NE(verify_latency->find(field), nullptr) << field;
    }
    EXPECT_GE(std::stoull(verify_latency->find("count")->number), 1u);
  } else {
    EXPECT_FALSE(enabled->boolean);
  }
}

TEST(ServeEndToEnd, TraceFieldAttachesStageSpans) {
  Server server(small_server_options());
  const std::string payload =
      Json::object_of(
          {{"op", Json::of("verify")},
           {"target", Json::of("0x0B")},
           {"options", Json::array_of({Json::of("--total-time"),
                                       Json::of("400"),
                                       Json::of("--no-timings")})},
           {"id", Json::of_u64(1)},
           {"trace", Json::of(true)}})
          .dump();

  const Json first = glva::serve::parse_json(server.dispatch(payload));
  ASSERT_NE(first.find("ok"), nullptr);
  ASSERT_TRUE(first.find("ok")->boolean);
  const Json* trace = first.find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());
  ASSERT_FALSE(trace->array.empty());
  bool saw_simulate = false;
  for (const Json& event : trace->array) {
    ASSERT_TRUE(event.is_object());
    const Json* name = event.find("name");
    ASSERT_NE(name, nullptr);
    if (name->string == "simulate") saw_simulate = true;
    ASSERT_NE(event.find("ph"), nullptr);
    EXPECT_EQ(event.find("ph")->string, "X");
  }
  EXPECT_TRUE(saw_simulate);

  // A cache hit runs nothing worth tracing: no trace member, body served
  // from cache.
  const Json second = glva::serve::parse_json(server.dispatch(payload));
  ASSERT_TRUE(second.find("ok")->boolean);
  EXPECT_TRUE(second.find("cached")->boolean);
  EXPECT_EQ(second.find("trace"), nullptr);

  // The wire schema rejects a non-boolean trace member.
  const ParsedResponse bad = parse_response(server.dispatch(
      "{\"op\":\"verify\",\"target\":\"0x0B\",\"trace\":\"yes\"}"));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_kind, "protocol");
}

TEST(ServeEndToEnd, StoppedServerRejectsAsShuttingDown) {
  ServerOptions options = small_server_options();
  options.unix_path =
      (std::filesystem::temp_directory_path() /
       ("glva-test-stop-" + std::to_string(::getpid()) + ".sock"))
          .string();
  Server server(options);
  server.start();
  server.stop();
  const ParsedResponse response = parse_response(server.dispatch(
      analysis_payload("verify", "0x0B", {"--total-time", "400"})));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_kind, "shutting_down");
}

// ---------------------------------------------------------------------------
// Socket transport: concurrent clients over a Unix socket
// ---------------------------------------------------------------------------

int connect_unix_socket(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                      sizeof(address)),
            0)
      << std::strerror(errno);
  return fd;
}

std::string socket_round_trip(int fd, const std::string& payload) {
  const std::string frame = glva::serve::encode_frame(payload);
  EXPECT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size()));
  FrameDecoder decoder;
  while (true) {
    if (auto response = decoder.take_frame()) return *response;
    char buffer[16 * 1024];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      ADD_FAILURE() << "connection closed before a response arrived";
      return {};
    }
    decoder.feed(buffer, static_cast<std::size_t>(n));
  }
}

TEST(ServeSocket, ConcurrentIdenticalRequestsExecuteOnceAndMatch) {
  ServerOptions options = small_server_options();
  options.unix_path =
      (std::filesystem::temp_directory_path() /
       ("glva-test-serve-" + std::to_string(::getpid()) + ".sock"))
          .string();
  Server server(options);
  server.start();

  const std::string payload = analysis_payload(
      "verify", "0x0B", {"--total-time", "400", "--no-timings"});
  constexpr int kClients = 4;
  std::vector<ParsedResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_unix_socket(options.unix_path);
      responses[static_cast<std::size_t>(c)] =
          parse_response(socket_round_trip(fd, payload));
      ::close(fd);
    });
  }
  for (auto& client : clients) client.join();

  int executed = 0;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(response.body, responses[0].body);
    if (!response.cached) ++executed;
  }
  // Single-flight + cache: exactly one execution, every other client is
  // served the same bytes without re-running the experiment.
  EXPECT_EQ(executed, 1);
  EXPECT_EQ(server.admission_stats().admitted, 1u);
  EXPECT_EQ(server.cache_stats().hits + server.coalesced_requests(),
            static_cast<std::uint64_t>(kClients - 1));

  // A fresh connection after completion is a plain cache hit.
  const int fd = connect_unix_socket(options.unix_path);
  const ParsedResponse late = parse_response(socket_round_trip(fd, payload));
  ::close(fd);
  ASSERT_TRUE(late.ok);
  EXPECT_TRUE(late.cached);
  EXPECT_EQ(late.body, responses[0].body);

  server.stop();
  EXPECT_FALSE(std::filesystem::exists(options.unix_path));
}

TEST(ServeSocket, OversizeFrameGetsProtocolErrorAndHangup) {
  ServerOptions options = small_server_options();
  options.max_frame_bytes = 64;
  options.unix_path =
      (std::filesystem::temp_directory_path() /
       ("glva-test-oversize-" + std::to_string(::getpid()) + ".sock"))
          .string();
  Server server(options);
  server.start();

  const int fd = connect_unix_socket(options.unix_path);
  const std::string oversize(128, 'x');
  const ParsedResponse response =
      parse_response(socket_round_trip(fd, oversize));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_kind, "protocol");
  // The server hangs up after a framing error.
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  server.stop();
}

// ---------------------------------------------------------------------------
// CLI surface
// ---------------------------------------------------------------------------

TEST(Cli, VersionReportsBuildAndSimd) {
  const std::string out = cli_stdout({"version"}, 0);
  EXPECT_NE(out.find("glva "), std::string::npos);
  EXPECT_NE(out.find("build:"), std::string::npos);
  EXPECT_NE(out.find("simd tiers:"), std::string::npos);
  EXPECT_NE(out.find("simd active:"), std::string::npos);
}

TEST(Cli, SweepRunsAndReportsRecovery) {
  const std::string out = cli_stdout(
      {"sweep", "0x0B", "--thresholds", "15", "--total-time", "4000"}, 0);
  EXPECT_NE(out.find("circuit:    0x0B"), std::string::npos);
  EXPECT_NE(out.find("1/1 point(s) recover the intended logic"),
            std::string::npos);
}

TEST(Cli, ServeRequiresAListener) {
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(run_cli({"serve"}, out, err), 2);
  EXPECT_NE(err.str().find("listener"), std::string::npos);
}

}  // namespace
