// Unit tests for the bit-packed stream machinery (logic::BitStream,
// logic::CombinationIndex) and its equivalence with the vector<bool>
// reference path: edge cases (empty streams, non-word-multiple lengths,
// tail-word masking), word-parallel op correctness against naive
// re-implementations, and randomized packed-vs-reference fuzz over the
// case/variation analyzers.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/adc.h"
#include "core/case_analyzer.h"
#include "core/variation_analyzer.h"
#include "fuzz_util.h"
#include "logic/bit_stream.h"
#include "logic/combination_index.h"
#include "sim/rng.h"
#include "util/errors.h"

namespace {

using namespace glva;
using logic::BitStream;
using logic::CombinationIndex;

// Generators and naive references shared with test_store and
// test_simd_kernels (tests/fuzz_util.h).
using testutil::naive_masked_transitions;
using testutil::naive_popcount;
using testutil::naive_transitions;
using testutil::random_bools;

// ------------------------------------------------------------ edge cases

TEST(BitStream, EmptyStream) {
  const BitStream empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.word_count(), 0u);
  EXPECT_EQ(empty.popcount(), 0u);
  EXPECT_EQ(empty.transition_count(), 0u);
  EXPECT_EQ(empty, BitStream::pack({}));
  EXPECT_EQ((~empty).size(), 0u);
  EXPECT_EQ(logic::and_popcount(empty, BitStream()), 0u);
  EXPECT_EQ(logic::masked_transition_count(empty, BitStream()), 0u);
  EXPECT_TRUE(empty.unpack().empty());
}

TEST(BitStream, PushBackAndIndexing) {
  BitStream stream;
  const std::vector<bool> pattern = {true, false, false, true, true};
  for (const bool b : pattern) stream.push_back(b);
  ASSERT_EQ(stream.size(), pattern.size());
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    EXPECT_EQ(stream[k], pattern[k]) << k;
    EXPECT_EQ(stream.test(k), pattern[k]) << k;
  }
  EXPECT_EQ(stream.unpack(), pattern);
}

TEST(BitStream, NonWordMultipleLengths) {
  sim::Rng rng(11);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 100u, 128u, 129u, 1000u}) {
    const std::vector<bool> bits = random_bools(n, rng);
    const BitStream stream = BitStream::pack(bits);
    EXPECT_EQ(stream.size(), n);
    EXPECT_EQ(stream.word_count(), (n + 63) / 64);
    EXPECT_EQ(stream.popcount(), naive_popcount(bits)) << n;
    EXPECT_EQ(stream.transition_count(), naive_transitions(bits)) << n;
    EXPECT_EQ(stream.unpack(), bits) << n;
  }
}

TEST(BitStream, TailWordMaskingInSetWord) {
  BitStream stream(70);  // 6 valid bits in the second word
  stream.set_word(1, ~std::uint64_t{0});
  EXPECT_EQ(stream.word(1), 0x3FULL);  // only the low 6 bits survive
  EXPECT_EQ(stream.popcount(), 6u);
}

TEST(BitStream, TailWordMaskingInNot) {
  const BitStream zeros(70);
  const BitStream ones = ~zeros;
  EXPECT_EQ(ones.size(), 70u);
  EXPECT_EQ(ones.popcount(), 70u);  // not 128: the tail stays zero
  EXPECT_EQ((~ones).popcount(), 0u);
  // Exact word multiple: no tail to mask.
  EXPECT_EQ((~BitStream(128)).popcount(), 128u);
}

TEST(BitStream, TailWordMaskingInBitwiseOps) {
  BitStream a(70);
  BitStream b(70);
  for (std::size_t k = 0; k < 70; k += 2) a.set(k, true);
  for (std::size_t k = 0; k < 70; k += 3) b.set(k, true);
  const std::vector<bool> ra = a.unpack();
  const std::vector<bool> rb = b.unpack();
  for (std::size_t k = 0; k < 70; ++k) {
    EXPECT_EQ((a & b)[k], ra[k] && rb[k]);
    EXPECT_EQ((a | b)[k], ra[k] || rb[k]);
    EXPECT_EQ((a ^ b)[k], ra[k] != rb[k]);
  }
  EXPECT_EQ((a & b).popcount() + (a ^ b).popcount(), (a | b).popcount());
}

TEST(BitStream, RangeAndSizeChecks) {
  BitStream stream(10);
  EXPECT_THROW((void)stream.test(10), InvalidArgument);
  EXPECT_THROW(stream.set(10, true), InvalidArgument);
  EXPECT_THROW((void)stream.word(1), InvalidArgument);
  EXPECT_THROW(stream.set_word(1, 0), InvalidArgument);
  const BitStream other(11);
  EXPECT_THROW((void)(stream & other), InvalidArgument);
  EXPECT_THROW((void)(stream | other), InvalidArgument);
  EXPECT_THROW((void)(stream ^ other), InvalidArgument);
  EXPECT_THROW((void)logic::and_popcount(stream, other), InvalidArgument);
  EXPECT_THROW((void)logic::masked_transition_count(stream, other),
               InvalidArgument);
}

// --------------------------------------------- fuzz vs the naive reference

TEST(BitStream, FuzzBitwiseOpsMatchVectorBool) {
  sim::Rng rng(21);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + rng.below(400);
    const std::vector<bool> ra = random_bools(n, rng);
    const std::vector<bool> rb = random_bools(n, rng);
    const BitStream a = BitStream::pack(ra);
    const BitStream b = BitStream::pack(rb);
    std::vector<bool> and_ref(n), or_ref(n), xor_ref(n), not_ref(n);
    for (std::size_t k = 0; k < n; ++k) {
      and_ref[k] = ra[k] && rb[k];
      or_ref[k] = ra[k] || rb[k];
      xor_ref[k] = ra[k] != rb[k];
      not_ref[k] = !ra[k];
    }
    EXPECT_EQ((a & b).unpack(), and_ref);
    EXPECT_EQ((a | b).unpack(), or_ref);
    EXPECT_EQ((a ^ b).unpack(), xor_ref);
    EXPECT_EQ((~a).unpack(), not_ref);
    EXPECT_EQ(logic::and_popcount(a, b), naive_popcount(and_ref));
    EXPECT_EQ(a.popcount(), naive_popcount(ra));
    EXPECT_EQ(a.transition_count(), naive_transitions(ra));
  }
}

TEST(BitStream, FuzzMaskedTransitionCountMatchesCompactedReference) {
  sim::Rng rng(31);
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + rng.below(500);
    const std::vector<bool> mask = random_bools(n, rng);
    const std::vector<bool> stream = random_bools(n, rng);
    EXPECT_EQ(logic::masked_transition_count(BitStream::pack(mask),
                                             BitStream::pack(stream)),
              naive_masked_transitions(mask, stream))
        << "round " << round << " n " << n;
  }
}

TEST(BitStream, MaskedTransitionCountBridgesGaps) {
  // Selected samples: k=0 (value 1) and k=130 (value 0) — two words apart.
  // The compacted stream is "10": exactly one transition across the gap.
  BitStream mask(131);
  mask.set(0, true);
  mask.set(130, true);
  BitStream stream(131);
  stream.set(0, true);
  EXPECT_EQ(logic::masked_transition_count(mask, stream), 1u);
  // Same selected value on both sides: no transition.
  stream.set(130, true);
  EXPECT_EQ(logic::masked_transition_count(mask, stream), 0u);
}

// -------------------------------------------------------- CombinationIndex

TEST(CombinationIndex, MasksPartitionSamplesMsbFirst) {
  // 2 inputs, 6 samples; input 0 is the MSB of the combination id.
  const BitStream msb = BitStream::pack({false, false, true, true, false, true});
  const BitStream lsb = BitStream::pack({false, true, false, true, true, true});
  const CombinationIndex index({msb, lsb});
  EXPECT_EQ(index.input_count(), 2u);
  EXPECT_EQ(index.sample_count(), 6u);
  EXPECT_EQ(index.combination_count(), 4u);
  const std::vector<std::size_t> expected_ids = {0, 1, 2, 3, 1, 3};
  for (std::size_t k = 0; k < expected_ids.size(); ++k) {
    EXPECT_EQ(index.id(k), expected_ids[k]) << k;
  }
  EXPECT_EQ(index.count(0), 1u);
  EXPECT_EQ(index.count(1), 2u);
  EXPECT_EQ(index.count(2), 1u);
  EXPECT_EQ(index.count(3), 2u);
  // Masks are disjoint and cover every sample.
  std::size_t total = 0;
  for (std::size_t c = 0; c < index.combination_count(); ++c) {
    total += index.count(c);
    EXPECT_EQ(index.mask(c).popcount(), index.count(c));
    for (std::size_t d = c + 1; d < index.combination_count(); ++d) {
      EXPECT_EQ(logic::and_popcount(index.mask(c), index.mask(d)), 0u);
    }
  }
  EXPECT_EQ(total, index.sample_count());
}

TEST(CombinationIndex, Validation) {
  EXPECT_THROW(CombinationIndex(std::vector<logic::BitStream>{}),
               InvalidArgument);
  EXPECT_THROW(CombinationIndex(std::vector<logic::BitStream>(
                   CombinationIndex::kMaxInputs + 1, BitStream(8))),
               InvalidArgument);
  EXPECT_THROW(CombinationIndex({BitStream(8), BitStream(9)}),
               InvalidArgument);
  EXPECT_THROW((void)CombinationIndex({BitStream(8)}).mask(2),
               InvalidArgument);
  EXPECT_THROW((void)CombinationIndex({BitStream(8)}).id(8), InvalidArgument);
  const CombinationIndex empty;
  EXPECT_EQ(empty.input_count(), 0u);
  EXPECT_EQ(empty.combination_count(), 0u);
}

TEST(CombinationIndex, MaxInputsBoundaryPartitionsMatchReference) {
  // 7 and 8 inputs (kMaxInputs) exercise the widest mask builds: 128 and
  // 256 combinations, most with empty masks at these sample counts. The
  // masks must still partition the samples and agree with the naive
  // classifier.
  sim::Rng rng(81);
  for (const std::size_t n_inputs : {CombinationIndex::kMaxInputs - 1,
                                     CombinationIndex::kMaxInputs}) {
    for (const std::size_t samples : {1ul, 65ul, 300ul}) {
      std::vector<std::vector<bool>> planes;
      std::vector<BitStream> packed;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        planes.push_back(random_bools(samples, rng));
        packed.push_back(BitStream::pack(planes.back()));
      }
      const CombinationIndex index(packed);
      ASSERT_EQ(index.combination_count(), std::size_t{1} << n_inputs);
      std::vector<std::size_t> expected_counts(index.combination_count(), 0);
      for (std::size_t k = 0; k < samples; ++k) {
        std::size_t combination = 0;
        for (std::size_t i = 0; i < n_inputs; ++i) {
          combination = (combination << 1) | (planes[i][k] ? 1U : 0U);
        }
        ++expected_counts[combination];
        ASSERT_EQ(index.id(k), combination)
            << n_inputs << " inputs, sample " << k;
      }
      std::size_t total = 0;
      for (std::size_t c = 0; c < index.combination_count(); ++c) {
        EXPECT_EQ(index.count(c), expected_counts[c])
            << n_inputs << " inputs, combination " << c;
        total += index.count(c);
      }
      EXPECT_EQ(total, samples);
    }
  }
}

TEST(BitStream, MaskedTransitionCountDegenerateMasks) {
  sim::Rng rng(91);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 500u}) {
    const std::vector<bool> bits = random_bools(n, rng);
    const BitStream stream = BitStream::pack(bits);
    // All-zero mask selects nothing: zero transitions.
    EXPECT_EQ(logic::masked_transition_count(BitStream(n), stream), 0u) << n;
    // All-one mask selects everything: exactly transition_count().
    EXPECT_EQ(logic::masked_transition_count(~BitStream(n), stream),
              stream.transition_count())
        << n;
  }
}

TEST(CombinationIndex, FuzzIdsMatchReferenceClassifier) {
  sim::Rng rng(41);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n_inputs = 1 + rng.below(4);
    const std::size_t samples = 1 + rng.below(300);
    std::vector<std::vector<bool>> planes;
    std::vector<BitStream> packed;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      planes.push_back(random_bools(samples, rng));
      packed.push_back(BitStream::pack(planes.back()));
    }
    const CombinationIndex index(packed);
    for (std::size_t k = 0; k < samples; ++k) {
      std::size_t combination = 0;
      for (std::size_t i = 0; i < n_inputs; ++i) {
        combination = (combination << 1) | (planes[i][k] ? 1U : 0U);
      }
      ASSERT_EQ(index.id(k), combination) << "round " << round;
    }
  }
}

// ------------------------------------ packed vs reference analyzer stages

TEST(PackedAnalysis, FuzzVariationAnalysisMatchesReference) {
  sim::Rng rng(51);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n_inputs = 1 + rng.below(3);
    const std::size_t samples = 1 + rng.below(600);
    core::DigitalData data;
    for (std::size_t i = 0; i < n_inputs; ++i) {
      data.inputs.push_back(random_bools(samples, rng));
    }
    data.output = random_bools(samples, rng);

    const core::VariationAnalysis reference =
        core::analyze_variation(core::analyze_cases(data));
    const core::VariationAnalysis packed = core::analyze_variation_packed(
        core::analyze_cases_packed(core::pack(data)));

    ASSERT_EQ(packed.input_count, reference.input_count);
    ASSERT_EQ(packed.records.size(), reference.records.size());
    for (std::size_t c = 0; c < reference.records.size(); ++c) {
      const auto& r = reference.records[c];
      const auto& p = packed.records[c];
      EXPECT_EQ(p.combination, r.combination);
      EXPECT_EQ(p.case_count, r.case_count) << "round " << round << " c " << c;
      EXPECT_EQ(p.high_count, r.high_count) << "round " << round << " c " << c;
      EXPECT_EQ(p.variation_count, r.variation_count)
          << "round " << round << " c " << c;
      // Same integers divided in the same order: bit-identical doubles.
      EXPECT_EQ(p.fov_est, r.fov_est);
    }
  }
}

TEST(PackedAnalysis, CaseCountsProjectionKeepsCountsDropsStreams) {
  core::DigitalData data;
  data.inputs.push_back({false, false, true, true, false});
  data.output = {true, false, true, true, false};
  const core::PackedCaseAnalysis packed =
      core::analyze_cases_packed(core::pack(data));
  const core::CaseAnalysis counts = core::case_counts(packed);
  const core::CaseAnalysis reference = core::analyze_cases(data);
  ASSERT_EQ(counts.cases.size(), reference.cases.size());
  for (std::size_t c = 0; c < counts.cases.size(); ++c) {
    EXPECT_EQ(counts.cases[c].combination, reference.cases[c].combination);
    EXPECT_EQ(counts.cases[c].case_count, reference.cases[c].case_count);
    EXPECT_TRUE(counts.cases[c].output_stream.empty());
  }
}

TEST(PackedAnalysis, AdcPackedMatchesAdc) {
  sim::Rng rng(61);
  std::vector<double> analog(257);
  for (double& v : analog) v = rng.normal() * 10.0 + 15.0;
  EXPECT_EQ(core::adc_packed(analog, 15.0).unpack(), core::adc(analog, 15.0));
  EXPECT_THROW((void)core::adc_packed(analog, 0.0), InvalidArgument);
}

TEST(PackedAnalysis, PackUnpackRoundTrip) {
  sim::Rng rng(71);
  core::DigitalData data;
  data.inputs.push_back(random_bools(100, rng));
  data.inputs.push_back(random_bools(100, rng));
  data.output = random_bools(100, rng);
  const core::PackedDigitalData packed = core::pack(data);
  EXPECT_EQ(packed.input_count(), data.input_count());
  EXPECT_EQ(packed.sample_count(), data.sample_count());
  const core::DigitalData back = core::unpack(packed);
  EXPECT_EQ(back.inputs, data.inputs);
  EXPECT_EQ(back.output, data.output);
}

}  // namespace
