// Conformance harness for the runtime-dispatched SIMD kernel layer
// (src/logic/simd/): every compiled-in, CPU-supported kernel variant is
// fuzzed bit-for-bit against the scalar reference tier — ragged tails,
// misaligned pointers, NaN/±inf/-0.0/threshold-equal doubles — then the
// whole analysis pipeline is re-run under each forced level and must
// reproduce the scalar verdict, PFoBE, and FOV fingerprints exactly.
// CI additionally forces GLVA_SIMD=scalar/sse2 through the full suite and
// runs this binary under GLVA_SIMD=avx2/avx512 where the runner supports
// them (.github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/circuit_repository.h"
#include "core/adc.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "fuzz_util.h"
#include "logic/bit_stream.h"
#include "logic/simd/kernel_set.h"
#include "logic/word_pack.h"
#include "sim/rng.h"
#include "store/trace_sink.h"
#include "util/errors.h"

namespace {

using namespace glva;
using logic::BitStream;
using logic::simd::IsaLevel;
using logic::simd::KernelSet;
using testutil::naive_masked_transitions;
using testutil::naive_popcount;
using testutil::naive_transitions;
using testutil::random_bools;
using testutil::random_words;
using testutil::special_doubles;

constexpr double kThreshold = 15.0;

/// The reference tier every variant is checked against. Always present:
/// the scalar TU has no ISA guard.
const KernelSet& scalar_ref() {
  const KernelSet* set = logic::simd::kernel_set(IsaLevel::kScalar);
  EXPECT_NE(set, nullptr);
  return *set;
}

/// Restore the entry state of the dispatch table around tests that force
/// levels, so suite order never leaks a forced level into other tests.
class ActiveLevelGuard {
public:
  ActiveLevelGuard() : saved_(logic::simd::active_level()) {}
  ~ActiveLevelGuard() { logic::simd::set_active(saved_); }
  ActiveLevelGuard(const ActiveLevelGuard&) = delete;
  ActiveLevelGuard& operator=(const ActiveLevelGuard&) = delete;

private:
  IsaLevel saved_;
};

std::uint64_t tail_mask_for(std::size_t bits) {
  const std::size_t rem = bits % BitStream::kWordBits;
  return rem == 0 ? ~std::uint64_t{0} : ((std::uint64_t{1} << rem) - 1);
}

// -------------------------------------------------------- dispatch table

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSSE2,
                               IsaLevel::kAVX2, IsaLevel::kAVX512}) {
    EXPECT_EQ(logic::simd::parse_isa_level(logic::simd::isa_level_name(level)),
              level);
  }
  EXPECT_THROW((void)logic::simd::parse_isa_level("avx1024"), InvalidArgument);
  EXPECT_THROW((void)logic::simd::parse_isa_level(""), InvalidArgument);
  EXPECT_THROW((void)logic::simd::parse_isa_level("SSE2"), InvalidArgument);
}

TEST(SimdDispatch, ScalarTierIsAlwaysAvailable) {
  EXPECT_TRUE(logic::simd::cpu_supports(IsaLevel::kScalar));
  ASSERT_NE(logic::simd::compiled_kernel_set(IsaLevel::kScalar), nullptr);
  ASSERT_NE(logic::simd::kernel_set(IsaLevel::kScalar), nullptr);
}

TEST(SimdDispatch, AvailableSetsAreOrderedAndSelfConsistent) {
  const auto sets = logic::simd::available_kernel_sets();
  ASSERT_FALSE(sets.empty());
  EXPECT_EQ(sets.front()->level, IsaLevel::kScalar);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    ASSERT_NE(sets[i], nullptr);
    EXPECT_STREQ(sets[i]->name, logic::simd::isa_level_name(sets[i]->level));
    EXPECT_EQ(logic::simd::kernel_set(sets[i]->level), sets[i]);
    if (i > 0) {
      EXPECT_GT(sets[i]->level, sets[i - 1]->level);
    }
    // A complete table: no null entry may ever reach a caller.
    EXPECT_NE(sets[i]->pack_threshold_block, nullptr);
    EXPECT_NE(sets[i]->popcount_words, nullptr);
    EXPECT_NE(sets[i]->and_popcount_words, nullptr);
    EXPECT_NE(sets[i]->transition_count_words, nullptr);
    EXPECT_NE(sets[i]->masked_pair_transitions, nullptr);
    EXPECT_NE(sets[i]->combine_masks, nullptr);
    EXPECT_NE(sets[i]->or_shift_down_words, nullptr);
    EXPECT_NE(sets[i]->and_shift_down_words, nullptr);
    EXPECT_NE(sets[i]->or_shift_up_words, nullptr);
  }
}

TEST(SimdDispatch, SetActiveRoundTripsEveryAvailableLevel) {
  ActiveLevelGuard guard;
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    EXPECT_EQ(logic::simd::active_level(), set->level);
    EXPECT_EQ(&logic::simd::active(), set);
  }
}

TEST(SimdDispatch, SetActiveRejectsUnavailableLevels) {
  ActiveLevelGuard guard;
  bool found_unavailable = false;
  for (const IsaLevel level : {IsaLevel::kSSE2, IsaLevel::kAVX2,
                               IsaLevel::kAVX512}) {
    if (logic::simd::kernel_set(level) == nullptr) {
      found_unavailable = true;
      EXPECT_THROW(logic::simd::set_active(level), InvalidArgument);
    }
  }
  if (!found_unavailable) {
    GTEST_SKIP() << "every compiled tier is supported by this CPU";
  }
}

// --------------------------------------------- kernel-level conformance

TEST(SimdKernels, PackThresholdBlockMatchesScalarOnSpecialValues) {
  sim::Rng rng(101);
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    for (const std::size_t words : {1u, 2u, 3u, 8u, 64u, 65u}) {
      // +8 doubles of slack so every offset misaligns the vector loads
      // without reading past the buffer.
      const std::vector<double> buffer =
          special_doubles(words * 64 + 8, kThreshold, rng);
      for (const std::size_t offset : {0u, 1u, 3u, 7u}) {
        std::vector<std::uint64_t> expected(words, 0xDEADBEEFu);
        std::vector<std::uint64_t> actual(words, 0xFEEDFACEu);
        scalar_ref().pack_threshold_block(buffer.data() + offset, words,
                                          kThreshold, expected.data());
        set->pack_threshold_block(buffer.data() + offset, words, kThreshold,
                                  actual.data());
        EXPECT_EQ(actual, expected)
            << set->name << ", words " << words << ", offset " << offset;
      }
    }
  }
}

TEST(SimdKernels, PackThresholdBlockMatchesScalarComparisonSemantics) {
  // Ground truth, independent of any kernel: bit j == (samples[j] >= th).
  sim::Rng rng(103);
  const std::vector<double> samples = special_doubles(256, kThreshold, rng);
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    std::vector<std::uint64_t> words(4);
    set->pack_threshold_block(samples.data(), 4, kThreshold, words.data());
    for (std::size_t k = 0; k < 256; ++k) {
      const bool expected = samples[k] >= kThreshold;
      const bool actual = ((words[k / 64] >> (k % 64)) & 1U) != 0;
      ASSERT_EQ(actual, expected)
          << set->name << ", sample " << k << " = " << samples[k];
    }
  }
}

TEST(SimdKernels, PopcountKernelsMatchScalarAcrossLengthsAndAlignment) {
  sim::Rng rng(107);
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    for (const std::size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 63u, 64u, 65u}) {
      const std::vector<std::uint64_t> a = random_words(n + 1, rng);
      const std::vector<std::uint64_t> b = random_words(n + 1, rng);
      for (const std::size_t offset : {0u, 1u}) {  // +8 bytes breaks vector
        EXPECT_EQ(set->popcount_words(a.data() + offset, n),      // alignment
                  scalar_ref().popcount_words(a.data() + offset, n))
            << set->name << ", n " << n << ", offset " << offset;
        EXPECT_EQ(
            set->and_popcount_words(a.data() + offset, b.data() + offset, n),
            scalar_ref().and_popcount_words(a.data() + offset,
                                            b.data() + offset, n))
            << set->name << ", n " << n << ", offset " << offset;
      }
    }
  }
}

TEST(SimdKernels, TransitionCountMatchesScalarAndNaiveAcrossTails) {
  sim::Rng rng(109);
  for (const std::size_t bits :
       {1u, 2u, 63u, 64u, 65u, 127u, 128u, 129u, 4095u, 4096u, 4097u}) {
    const std::vector<bool> reference = random_bools(bits, rng);
    const BitStream stream = BitStream::pack(reference);
    const std::uint64_t tail = tail_mask_for(bits);
    const std::size_t expected = naive_transitions(reference);
    ASSERT_EQ(scalar_ref().transition_count_words(stream.words().data(),
                                                  stream.word_count(), tail),
              expected)
        << "scalar reference diverged from naive, bits " << bits;
    for (const KernelSet* set : logic::simd::available_kernel_sets()) {
      EXPECT_EQ(set->transition_count_words(stream.words().data(),
                                            stream.word_count(), tail),
                expected)
          << set->name << ", bits " << bits;
    }
  }
}

TEST(SimdKernels, MaskedPairTransitionsMatchesScalar) {
  sim::Rng rng(113);
  for (const std::size_t bits : {1u, 64u, 65u, 500u, 4096u, 4097u}) {
    const BitStream mask = BitStream::pack(random_bools(bits, rng));
    const BitStream stream = BitStream::pack(random_bools(bits, rng));
    const std::size_t expected = scalar_ref().masked_pair_transitions(
        mask.words().data(), stream.words().data(), mask.word_count());
    for (const KernelSet* set : logic::simd::available_kernel_sets()) {
      EXPECT_EQ(set->masked_pair_transitions(mask.words().data(),
                                             stream.words().data(),
                                             mask.word_count()),
                expected)
          << set->name << ", bits " << bits;
    }
  }
}

TEST(SimdKernels, CombineMasksMatchesScalarUpToMaxInputs) {
  sim::Rng rng(127);
  for (const std::size_t inputs : {1u, 2u, 3u, 7u, 8u}) {
    for (const std::size_t words : {1u, 3u, 8u, 9u, 65u}) {
      std::vector<std::vector<std::uint64_t>> planes;
      std::vector<const std::uint64_t*> plane_ptrs;
      for (std::size_t i = 0; i < inputs; ++i) {
        planes.push_back(random_words(words, rng));
        plane_ptrs.push_back(planes.back().data());
      }
      // A few combinations: all complemented, all direct, and a mixed one.
      for (const std::size_t c :
           {std::size_t{0}, (std::size_t{1} << inputs) - 1,
            (std::size_t{1} << inputs) / 2}) {
        std::vector<std::uint64_t> invert(inputs);
        for (std::size_t i = 0; i < inputs; ++i) {
          invert[i] = ((c >> (inputs - 1 - i)) & 1U) != 0 ? 0
                                                          : ~std::uint64_t{0};
        }
        std::vector<std::uint64_t> expected(words);
        scalar_ref().combine_masks(plane_ptrs.data(), invert.data(), inputs,
                                   words, expected.data());
        for (const KernelSet* set : logic::simd::available_kernel_sets()) {
          std::vector<std::uint64_t> actual(words, 0x5A5A5A5Au);
          set->combine_masks(plane_ptrs.data(), invert.data(), inputs, words,
                             actual.data());
          EXPECT_EQ(actual, expected) << set->name << ", inputs " << inputs
                                      << ", words " << words << ", c " << c;
        }
      }
    }
  }
}

// The shift-combine kernels' executable spec: per-bit over the 64n-bit
// array, with out-of-range view bits reading 0 for the OR forms and 1
// for the AND form.
enum class ShiftKernel { kOrDown, kAndDown, kOrUp };

std::vector<std::uint64_t> naive_shift_combine(
    const std::vector<std::uint64_t>& src,
    const std::vector<std::uint64_t>& dst, std::size_t shift,
    ShiftKernel kernel) {
  const std::size_t bits = src.size() * 64;
  std::vector<std::uint64_t> out = dst;
  for (std::size_t j = 0; j < bits; ++j) {
    bool view;
    if (kernel == ShiftKernel::kOrUp) {
      view = j >= shift && ((src[(j - shift) / 64] >> ((j - shift) % 64)) &
                            1U) != 0;
    } else {
      const std::size_t k = j + shift;
      view = k < bits ? ((src[k / 64] >> (k % 64)) & 1U) != 0
                      : kernel == ShiftKernel::kAndDown;
    }
    const bool current = ((out[j / 64] >> (j % 64)) & 1U) != 0;
    const bool combined = kernel == ShiftKernel::kAndDown ? (current && view)
                                                          : (current || view);
    if (combined) {
      out[j / 64] |= std::uint64_t{1} << (j % 64);
    } else {
      out[j / 64] &= ~(std::uint64_t{1} << (j % 64));
    }
  }
  return out;
}

TEST(SimdKernels, ShiftCombineKernelsMatchNaiveIncludingAliasing) {
  sim::Rng rng(131);
  for (const std::size_t words : {1u, 2u, 5u, 8u, 9u, 65u}) {
    for (const std::size_t shift :
         {std::size_t{0}, std::size_t{1}, std::size_t{31}, std::size_t{63},
          std::size_t{64}, std::size_t{65}, std::size_t{127},
          std::size_t{128}, std::size_t{129}, words * 64 - 1, words * 64,
          words * 64 + 7}) {
      const std::vector<std::uint64_t> src = random_words(words, rng);
      const std::vector<std::uint64_t> dst = random_words(words, rng);
      const struct {
        ShiftKernel kind;
        void (*kernel)(const std::uint64_t*, std::size_t, std::size_t,
                       std::uint64_t*);
        const char* name;
      } cases[] = {
          {ShiftKernel::kOrDown, scalar_ref().or_shift_down_words,
           "or_shift_down"},
          {ShiftKernel::kAndDown, scalar_ref().and_shift_down_words,
           "and_shift_down"},
          {ShiftKernel::kOrUp, scalar_ref().or_shift_up_words,
           "or_shift_up"},
      };
      for (const auto& c : cases) {
        const std::vector<std::uint64_t> expected =
            naive_shift_combine(src, dst, shift, c.kind);
        for (const KernelSet* set : logic::simd::available_kernel_sets()) {
          const auto kernel = c.kind == ShiftKernel::kOrDown
                                  ? set->or_shift_down_words
                                  : c.kind == ShiftKernel::kAndDown
                                        ? set->and_shift_down_words
                                        : set->or_shift_up_words;
          std::vector<std::uint64_t> actual = dst;
          kernel(src.data(), words, shift, actual.data());
          EXPECT_EQ(actual, expected)
              << set->name << " " << c.name << ", words " << words
              << ", shift " << shift;
          // The in-place cascade case: dst aliases src exactly.
          std::vector<std::uint64_t> aliased = src;
          kernel(aliased.data(), words, shift, aliased.data());
          EXPECT_EQ(aliased, naive_shift_combine(src, src, shift, c.kind))
              << set->name << " " << c.name << " aliased, words " << words
              << ", shift " << shift;
        }
      }
    }
  }
}

// -------------------------------------- BitStream/ADC under forced levels

TEST(SimdForcedLevels, BitStreamCountsMatchNaiveUnderEveryLevel) {
  ActiveLevelGuard guard;
  sim::Rng rng(131);
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 4095u, 4097u}) {
      const std::vector<bool> ra = random_bools(n, rng);
      const std::vector<bool> rb = random_bools(n, rng);
      const BitStream a = BitStream::pack(ra);
      const BitStream b = BitStream::pack(rb);
      EXPECT_EQ(a.popcount(), naive_popcount(ra)) << set->name << " n " << n;
      EXPECT_EQ(a.transition_count(), naive_transitions(ra))
          << set->name << " n " << n;
      std::size_t and_expected = 0;
      for (std::size_t k = 0; k < n; ++k) {
        and_expected += (ra[k] && rb[k]) ? 1 : 0;
      }
      EXPECT_EQ(logic::and_popcount(a, b), and_expected)
          << set->name << " n " << n;
      EXPECT_EQ(logic::masked_transition_count(a, b),
                naive_masked_transitions(ra, rb))
          << set->name << " n " << n;
    }
  }
}

TEST(SimdForcedLevels, AdcPackedMatchesReferenceAdcUnderEveryLevel) {
  ActiveLevelGuard guard;
  sim::Rng rng(137);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 257u, 4096u}) {
    const std::vector<double> analog = special_doubles(n, kThreshold, rng);
    const std::vector<bool> expected = core::adc(analog, kThreshold);
    for (const KernelSet* set : logic::simd::available_kernel_sets()) {
      logic::simd::set_active(set->level);
      EXPECT_EQ(core::adc_packed(analog, kThreshold).unpack(), expected)
          << set->name << ", n " << n;
    }
  }
}

TEST(SimdForcedLevels, WordPackersMatchScalarComparison) {
  ActiveLevelGuard guard;
  sim::Rng rng(139);
  const std::vector<double> samples = special_doubles(64, kThreshold, rng);
  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    std::uint64_t expected = 0;
    for (std::size_t j = 0; j < 64; ++j) {
      expected |= static_cast<std::uint64_t>(samples[j] >= kThreshold) << j;
    }
    EXPECT_EQ(logic::pack_threshold_word64(samples.data(), kThreshold),
              expected)
        << set->name;
    for (const std::size_t count : {0u, 1u, 31u, 63u, 64u}) {
      const std::uint64_t mask =
          count == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
      EXPECT_EQ(
          logic::pack_threshold_bits(samples.data(), count, kThreshold),
          expected & mask)
          << set->name << ", count " << count;
    }
  }
}

// ------------------------------------------- statistics tier (pipeline)

/// Bit-exact rendering of a double (text formatting could hide ULP drift).
std::string bits_of(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream out;
  out << std::hex << bits;
  return out.str();
}

/// Everything verdict-bearing an experiment produced, ULP-exact.
std::string fingerprint(const core::ExperimentResult& result) {
  std::ostringstream out;
  out << result.extraction.extracted().to_bits() << '|'
      << bits_of(result.extraction.fitness()) << '|'
      << result.verification.matches << '|'
      << result.verification.wrong_state_count();
  for (const auto& record : result.extraction.variation.records) {
    out << '|' << record.combination << ':' << record.case_count << ':'
        << record.high_count << ':' << record.variation_count << ':'
        << bits_of(record.fov_est);
  }
  return out.str();
}

std::string fingerprint(const core::EnsembleResult& ensemble) {
  std::ostringstream out;
  out << ensemble.majority_logic.to_bits() << '|' << ensemble.majority_matches
      << '|' << ensemble.match_count << '|' << bits_of(ensemble.pfobe.mean)
      << '|' << bits_of(ensemble.pfobe.stddev) << '|'
      << bits_of(ensemble.wrong_states.mean);
  for (const auto& stats : ensemble.combination_stats) {
    out << '|' << stats.combination << ':' << stats.high_votes << ':'
        << bits_of(stats.fov_mean) << ':' << bits_of(stats.fov_stddev);
  }
  return out.str();
}

std::vector<std::size_t> case_counts(const core::ExperimentResult& result) {
  std::vector<std::size_t> counts;
  for (const auto& record : result.extraction.variation.records) {
    counts.push_back(record.case_count);
  }
  return counts;
}

/// Pearson chi-square of observed per-combination case counts against the
/// scalar run's counts as the expected distribution (combinations the
/// scalar run never visited must stay unvisited).
double case_count_chi_square(const std::vector<std::size_t>& observed,
                             const std::vector<std::size_t>& expected) {
  EXPECT_EQ(observed.size(), expected.size());
  double chi2 = 0.0;
  for (std::size_t c = 0; c < observed.size(); ++c) {
    const double obs = static_cast<double>(observed[c]);
    const double exp = static_cast<double>(expected[c]);
    if (exp == 0.0) {
      EXPECT_EQ(obs, 0.0) << "combination " << c;
      continue;
    }
    chi2 += (obs - exp) * (obs - exp) / exp;
  }
  return chi2;
}

core::ExperimentConfig fast_config() {
  core::ExperimentConfig config;
  config.total_time = 400.0;
  config.seed = 99;
  return config;
}

TEST(SimdStatistics, ExperimentVerdictsAreBitIdenticalAcrossLevels) {
  ActiveLevelGuard guard;
  const auto spec = circuits::CircuitRepository::build("myers_and");

  logic::simd::set_active(IsaLevel::kScalar);
  const auto baseline = core::run_experiment(spec, fast_config());
  const std::string expected = fingerprint(baseline);
  const std::vector<std::size_t> expected_counts = case_counts(baseline);

  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    const auto result = core::run_experiment(spec, fast_config());
    EXPECT_EQ(fingerprint(result), expected) << set->name;
    // Same samples, same classification: the case-count distribution is
    // not merely statistically compatible but exactly the scalar one.
    EXPECT_EQ(case_count_chi_square(case_counts(result), expected_counts),
              0.0)
        << set->name;
  }
}

TEST(SimdStatistics, DigitizingSinkPipelineIsBitIdenticalAcrossLevels) {
  ActiveLevelGuard guard;
  const auto spec = circuits::CircuitRepository::build("myers_and");
  core::ExperimentConfig config = fast_config();
  config.sink = store::SinkKind::kDigitize;

  logic::simd::set_active(IsaLevel::kScalar);
  const std::string expected = fingerprint(core::run_experiment(spec, config));

  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    EXPECT_EQ(fingerprint(core::run_experiment(spec, config)), expected)
        << set->name;
  }
}

TEST(SimdStatistics, EnsembleFingerprintIsBitIdenticalAcrossLevels) {
  ActiveLevelGuard guard;
  const auto spec = circuits::CircuitRepository::build("myers_nand");

  logic::simd::set_active(IsaLevel::kScalar);
  const auto baseline = core::run_ensemble(spec, fast_config(), 3, 2);
  const std::string expected = fingerprint(baseline);

  for (const KernelSet* set : logic::simd::available_kernel_sets()) {
    logic::simd::set_active(set->level);
    const auto ensemble = core::run_ensemble(spec, fast_config(), 3, 2);
    EXPECT_EQ(fingerprint(ensemble), expected) << set->name;
  }
}

}  // namespace
