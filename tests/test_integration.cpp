// Integration tests: the full pipeline (circuit -> SSA sweep -> Algorithm 1
// -> verification) on the paper's 15-circuit benchmark, plus cross-cutting
// end-to-end properties (SBML round trips, simulator equivalence, threshold
// degradation, the Figure 2 XNOR trap).

#include <gtest/gtest.h>

#include "circuits/circuit_repository.h"
#include "core/baseline.h"
#include "core/experiment.h"
#include "core/threshold_sweep.h"
#include "logic/quine_mccluskey.h"
#include "sbml/reader.h"
#include "sbml/writer.h"

namespace {

using namespace glva;
using circuits::CircuitRepository;

// ------------------------- every circuit recovers its intended function --

class AllCircuits : public ::testing::TestWithParam<std::string> {};

TEST_P(AllCircuits, RecoversIntendedLogicAtNominalParameters) {
  const auto spec = CircuitRepository::build(GetParam());
  core::ExperimentConfig config;  // the paper's defaults
  const auto result = core::run_experiment(spec, config);
  EXPECT_TRUE(result.verification.matches)
      << spec.name << " extracted " << result.extraction.expression() << " — "
      << core::summarize(result.verification, spec.expected);
  EXPECT_GE(result.extraction.fitness(), 95.0) << spec.name;
}

TEST_P(AllCircuits, SweepCoversEveryCombinationEvenly) {
  const auto spec = CircuitRepository::build(GetParam());
  core::ExperimentConfig config;
  config.total_time = 4000.0;
  const auto result = core::run_experiment(spec, config);
  const std::size_t combos = spec.expected.row_count();
  for (const auto& record : result.extraction.cases.cases) {
    // Equal split of the sweep: total samples / 2^N, within one sample.
    EXPECT_NEAR(static_cast<double>(record.case_count),
                4000.0 / static_cast<double>(combos), 2.0)
        << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FifteenCircuitStudy, AllCircuits,
    ::testing::ValuesIn(CircuitRepository::names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ----------------------------------------------- seed robustness sampling --

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, HeadlineCircuitsMatchAcrossSeeds) {
  core::ExperimentConfig config;
  config.seed = GetParam();
  for (const char* name : {"myers_and", "0x0B", "0x17"}) {
    const auto spec = CircuitRepository::build(name);
    const auto result = core::run_experiment(spec, config);
    EXPECT_TRUE(result.verification.matches)
        << name << " seed " << GetParam() << ": "
        << result.extraction.expression();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ------------------------------------------------------- cross-simulator --

TEST(Integration, ExactSimulatorsAgreeOnExtractedLogic) {
  for (const char* name : {"myers_and", "0x1C", "0x8"}) {
    const auto spec = CircuitRepository::build(name);
    core::ExperimentConfig config;
    config.method = sim::SsaMethod::kDirect;
    const auto direct = core::run_experiment(spec, config);
    config.method = sim::SsaMethod::kNextReaction;
    const auto nrm = core::run_experiment(spec, config);
    EXPECT_EQ(direct.extraction.extracted(), nrm.extraction.extracted())
        << name;
    EXPECT_TRUE(nrm.verification.matches) << name;
  }
}

TEST(Integration, TauLeapingRecoversLogicOnSimpleCircuits) {
  const auto spec = CircuitRepository::build("myers_nor");
  core::ExperimentConfig config;
  config.method = sim::SsaMethod::kTauLeap;
  const auto result = core::run_experiment(spec, config);
  EXPECT_TRUE(result.verification.matches)
      << result.extraction.expression();
}

// ------------------------------------------------------- two-stage models --

TEST(Integration, TwoStageExpansionPreservesLogic) {
  for (const char* name : {"0x1", "0x1C"}) {
    const auto spec = CircuitRepository::build(name, /*two_stage=*/true);
    core::ExperimentConfig config;
    const auto result = core::run_experiment(spec, config);
    EXPECT_TRUE(result.verification.matches)
        << name << " (two-stage) extracted "
        << result.extraction.expression();
  }
}

// ------------------------------------------------------------ SBML round --

TEST(Integration, SbmlRoundTripIsBitIdentical) {
  for (const char* name : {"myers_and", "0x0B"}) {
    const auto spec = CircuitRepository::build(name);
    circuits::CircuitSpec reloaded_spec = spec;
    reloaded_spec.model = sbml::read_sbml(sbml::write_sbml(spec.model));

    core::ExperimentConfig config;
    const auto original = core::run_experiment(spec, config);
    const auto reloaded = core::run_experiment(reloaded_spec, config);
    // Same seed + value-identical model => identical traces and analysis.
    EXPECT_EQ(original.extraction.extracted(), reloaded.extraction.extracted())
        << name;
    EXPECT_DOUBLE_EQ(original.extraction.fitness(),
                     reloaded.extraction.fitness())
        << name;
  }
}

// -------------------------------------------------- threshold degradation --

TEST(Integration, Figure5ThresholdShape) {
  const auto spec = CircuitRepository::build("0x0B");
  core::ExperimentConfig config;
  const auto sweep = core::threshold_sweep(spec, config, {3.0, 15.0, 40.0});
  ASSERT_EQ(sweep.points.size(), 3u);

  // ThVAL = 3: inputs too weak to trigger the output -> wrong states.
  EXPECT_FALSE(sweep.points[0].result.verification.matches);
  // ThVAL = 15: intended function.
  EXPECT_TRUE(sweep.points[1].result.verification.matches);
  // ThVAL = 40: output level indistinguishable from threshold -> wrong
  // states again, with far larger output variation.
  EXPECT_FALSE(sweep.points[2].result.verification.matches);

  const auto total_variation = [](const core::ExperimentResult& result) {
    std::size_t total = 0;
    for (const auto& record : result.extraction.variation.records) {
      total += record.variation_count;
    }
    return total;
  };
  EXPECT_GT(total_variation(sweep.points[2].result),
            5 * total_variation(sweep.points[1].result));
}

TEST(Integration, RedigitizeAblationIsolatesAdcEffect) {
  const auto spec = CircuitRepository::build("0x0B");
  core::ExperimentConfig config;
  const auto sweep =
      core::threshold_sweep_redigitize(spec, config, {15.0, 40.0});
  // With the drive held at 15 molecules, re-digitizing at 40 still loses
  // states (the plateau sits near 44) — the ADC effect alone.
  EXPECT_TRUE(sweep.points[0].result.verification.matches);
  EXPECT_FALSE(sweep.points[1].result.verification.matches);
}

// -------------------------------------------------------- Figure 2 story --

TEST(Integration, UnfilteredReadingOfAndGateIsXnor) {
  const auto spec = CircuitRepository::build("myers_and");
  core::ExperimentConfig config;  // seed 1 shows the initial transient
  const auto result = core::run_experiment(spec, config);

  const auto naive = core::extract_with_rule(
      result.extraction.variation, core::BaselineRule::kAnyHigh,
      config.fov_ud);
  // The initial GFP transient makes combination 00 look high at least once
  // -> the naive rule reads XNOR; the paper's filters read AND.
  EXPECT_TRUE(naive.output(0));
  EXPECT_TRUE(naive.output(3));
  EXPECT_EQ(result.extraction.extracted(),
            logic::TruthTable::and_gate(2));
}

TEST(Integration, DecayTailAtCombination100IsFilteredByEq2) {
  // The paper's 0x0B narrative: 011 is high; switching to 100 leaves a
  // decaying tail of logic-1 output that equation (2) must reject.
  const auto spec = CircuitRepository::build("0x0B");
  core::ExperimentConfig config;
  config.seed = 2;  // the canonical figure seed
  const auto result = core::run_experiment(spec, config);
  const auto& record_100 = result.extraction.variation.records[0b100];
  EXPECT_GT(record_100.high_count, 0u);  // the tail exists...
  EXPECT_LT(record_100.high_count, record_100.case_count / 2);  // ...but loses
  EXPECT_EQ(result.extraction.construction.outcomes[0b100].verdict,
            core::CaseVerdict::kLow);
}

// --------------------------------------------------- intermediate signals --

TEST(Integration, IntermediateComponentAnalysisRecoversStageLogic) {
  const auto spec = CircuitRepository::build("0x8");  // AND = NOR(NOT,NOT)
  core::ExperimentConfig config;
  const auto result = core::run_experiment(spec, config);

  const core::LogicAnalyzer analyzer(
      core::AnalyzerConfig{config.threshold, config.fov_ud});
  // SrpR = NOT(A), QacR = NOT(B).
  const auto srp =
      analyzer.analyze(result.sweep.trace, spec.input_ids, "SrpR");
  EXPECT_EQ(srp.extracted(),
            logic::TruthTable::from_minterms(2, {0, 1}));  // A'
  const auto qac =
      analyzer.analyze(result.sweep.trace, spec.input_ids, "QacR");
  EXPECT_EQ(qac.extracted(),
            logic::TruthTable::from_minterms(2, {0, 2}));  // B'
}

// ------------------------------------------------------------ hold time --

TEST(Integration, TooShortHoldTimeBreaksDeepCircuits) {
  // Section II: "if ... each of the input combination is changed before the
  // propagation delay has elapsed, then the circuit never produces a
  // correct output for some of the input combinations."
  const auto spec = CircuitRepository::build("0x17");
  core::ExperimentConfig config;
  config.total_time = 400.0;  // 50 tu per combination << propagation delay
  const auto result = core::run_experiment(spec, config);
  EXPECT_FALSE(result.verification.matches);
}

}  // namespace
