// Tests for the store/ streaming trace I/O subsystem: the TraceSink
// contract, the .glvt spill format (round-trip fuzz, golden bytes, error
// paths), fused sampler→ADC digitization, and the bit-identity of the
// three sink kinds through the full experiment pipeline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "circuits/circuit_repository.h"
#include "core/adc.h"
#include "core/ensemble.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/threshold_sweep.h"
#include "fuzz_util.h"
#include "sim/trace.h"
#include "sim/virtual_lab.h"
#include "store/digitizing_sink.h"
#include "store/glvt.h"
#include "store/memory_sink.h"
#include "store/spill_reader.h"
#include "store/spill_sink.h"
#include "store/trace_sink.h"
#include "util/errors.h"
#include "util/stats.h"

namespace {

using namespace glva;
namespace fs = std::filesystem;

fs::path temp_path(const std::string& name) {
  return fs::path(::testing::TempDir()) / name;
}

/// Stream a materialized trace through any sink, row by row — the same
/// call sequence the TraceSampler produces.
void stream_trace(const sim::Trace& trace, store::TraceSink& sink) {
  sink.begin(trace.species_names());
  std::vector<double> row(trace.species_count());
  for (std::size_t k = 0; k < trace.sample_count(); ++k) {
    for (std::size_t s = 0; s < trace.species_count(); ++s) {
      row[s] = trace.series(s)[k];
    }
    sink.append(trace.times()[k], row);
  }
  sink.finish();
}

/// Deterministic synthetic trace mixing long constant runs (clamped-input
/// shape, RLE-friendly) with per-sample variation (raw sections).
sim::Trace synthetic_trace(std::size_t samples) {
  sim::Trace trace({"A", "B", "GFP"});
  std::vector<double> row(3);
  for (std::size_t k = 0; k < samples; ++k) {
    row[0] = (k / 10) % 2 == 0 ? 0.0 : 15.0;
    row[1] = static_cast<double>(k % 7);
    row[2] = k < samples / 2 ? 0.0 : 30.0;
    trace.append(static_cast<double>(k) * 0.5, row);
  }
  return trace;
}

void expect_traces_identical(const sim::Trace& a, const sim::Trace& b) {
  ASSERT_EQ(a.species_names(), b.species_names());
  ASSERT_EQ(a.sample_count(), b.sample_count());
  EXPECT_EQ(a.times(), b.times());
  for (std::size_t s = 0; s < a.species_count(); ++s) {
    EXPECT_EQ(a.series(s), b.series(s)) << "species " << s;
  }
}

void expect_extractions_identical(const core::ExtractionResult& a,
                                  const core::ExtractionResult& b) {
  EXPECT_EQ(a.expression(), b.expression());
  EXPECT_EQ(a.fitness(), b.fitness());
  ASSERT_EQ(a.variation.records.size(), b.variation.records.size());
  for (std::size_t c = 0; c < a.variation.records.size(); ++c) {
    const auto& ra = a.variation.records[c];
    const auto& rb = b.variation.records[c];
    EXPECT_EQ(ra.case_count, rb.case_count) << "combination " << c;
    EXPECT_EQ(ra.high_count, rb.high_count) << "combination " << c;
    EXPECT_EQ(ra.variation_count, rb.variation_count) << "combination " << c;
    EXPECT_EQ(ra.fov_est, rb.fov_est) << "combination " << c;
  }
  ASSERT_EQ(a.construction.outcomes.size(), b.construction.outcomes.size());
  for (std::size_t c = 0; c < a.construction.outcomes.size(); ++c) {
    EXPECT_EQ(a.construction.outcomes[c].verdict,
              b.construction.outcomes[c].verdict)
        << "combination " << c;
  }
}

std::string read_file_bytes(const fs::path& path) {
  std::ifstream file(path, std::ios::binary);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream bytes;
  bytes << file.rdbuf();
  return bytes.str();
}

// --------------------------------------------------------------- SinkKind

TEST(SinkKind, NamesRoundTrip) {
  for (const auto kind : {store::SinkKind::kMemory, store::SinkKind::kSpill,
                          store::SinkKind::kDigitize}) {
    EXPECT_EQ(store::parse_sink_kind(store::sink_kind_name(kind)), kind);
  }
  EXPECT_EQ(store::parse_sink_kind("memory"), store::SinkKind::kMemory);
  EXPECT_THROW((void)store::parse_sink_kind("disk"), InvalidArgument);
}

// ------------------------------------------------------------- MemorySink

TEST(MemorySink, ReproducesStreamedTrace) {
  const sim::Trace trace = synthetic_trace(100);
  store::MemorySink sink;
  stream_trace(trace, sink);
  expect_traces_identical(trace, sink.trace());
}

// ------------------------------------------------------------ glvt codec

TEST(GlvtCodec, SectionRoundTripPreservesBitPatterns) {
  const std::vector<double> values = {
      0.0, -0.0, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(), -3.25, 42.0};
  std::string buffer;
  store::glvt::encode_section(values, buffer);
  std::size_t offset = 0;
  const std::vector<double> decoded =
      store::glvt::decode_section(buffer, offset, values.size());
  EXPECT_EQ(offset, buffer.size());
  ASSERT_EQ(decoded.size(), values.size());
  EXPECT_EQ(std::memcmp(decoded.data(), values.data(),
                        values.size() * sizeof(double)),
            0)
      << "round trip must preserve NaN and signed-zero bit patterns";
}

TEST(GlvtCodec, ConstantRunsCompress) {
  const std::vector<double> constant(1000, 15.0);
  std::string buffer;
  store::glvt::encode_section(constant, buffer);
  // One RLE run: tag + length + (count, bits) — far below 8000 raw bytes.
  EXPECT_LT(buffer.size(), 64u);
  std::size_t offset = 0;
  EXPECT_EQ(store::glvt::decode_section(buffer, offset, constant.size()),
            constant);
}

TEST(GlvtCodec, DecodeRejectsTruncationAndBadTags) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  std::string buffer;
  store::glvt::encode_section(values, buffer);

  std::string truncated = buffer.substr(0, buffer.size() - 3);
  std::size_t offset = 0;
  EXPECT_THROW((void)store::glvt::decode_section(truncated, offset, 3),
               StorageError);

  std::string bad_tag = buffer;
  bad_tag[0] = 7;  // neither kRaw nor kRle
  offset = 0;
  EXPECT_THROW((void)store::glvt::decode_section(bad_tag, offset, 3),
               StorageError);
}

// ------------------------------------------------------- spill round trip

TEST(Spill, RoundTripReproducesTraceBitForBit) {
  const sim::Trace trace = synthetic_trace(150);
  const fs::path path = temp_path("roundtrip.glvt");

  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.seed = 123;
  options.sampling_period = 0.5;
  store::SpillSink sink(path.string(), options);
  stream_trace(trace, sink);
  EXPECT_EQ(sink.sample_count(), 150u);
  EXPECT_EQ(sink.chunk_count(), 3u);  // 64 + 64 + 22

  store::SpillReader reader(path.string());
  EXPECT_EQ(reader.species_names(), trace.species_names());
  EXPECT_EQ(reader.sample_count(), 150u);
  EXPECT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.chunk_capacity(), 64u);
  EXPECT_EQ(reader.seed(), 123u);
  EXPECT_EQ(reader.sampling_period(), 0.5);

  expect_traces_identical(trace, reader.read_all());

  const store::SpillReader::Chunk last = reader.read_chunk(2);
  EXPECT_EQ(last.first_sample, 128u);
  EXPECT_EQ(last.times.size(), 22u);
}

TEST(Spill, RoundTripFuzzAcrossSizesAndChunkCapacities) {
  for (const std::size_t samples : {0u, 1u, 63u, 64u, 65u, 129u, 1000u}) {
    for (const std::uint32_t chunk : {64u, 128u, 4096u}) {
      const sim::Trace trace = synthetic_trace(samples);
      const fs::path path = temp_path("fuzz_" + std::to_string(samples) +
                                      "_" + std::to_string(chunk) + ".glvt");
      store::SpillSink::Options options;
      options.chunk_samples = chunk;
      store::SpillSink sink(path.string(), options);
      stream_trace(trace, sink);

      store::SpillReader reader(path.string());
      ASSERT_EQ(reader.sample_count(), samples);
      const std::size_t expected_chunks = (samples + chunk - 1) / chunk;
      ASSERT_EQ(reader.chunk_count(), expected_chunks);
      expect_traces_identical(trace, reader.read_all());
    }
  }
}

TEST(Spill, CsvStreamMatchesTraceToCsv) {
  const sim::Trace trace = synthetic_trace(150);
  const fs::path path = temp_path("csv.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = 64;
  store::SpillSink sink(path.string(), options);
  stream_trace(trace, sink);

  store::SpillReader reader(path.string());
  std::ostringstream csv;
  reader.write_csv(csv);
  EXPECT_EQ(csv.str(), trace.to_csv());
}

TEST(Spill, ChunkSizeMustBeWordMultiple) {
  EXPECT_THROW(store::SpillSink("x.glvt", {.chunk_samples = 0}),
               InvalidArgument);
  EXPECT_THROW(store::SpillSink("x.glvt", {.chunk_samples = 100}),
               InvalidArgument);
}

// ------------------------------------------------------ spill error paths

TEST(Spill, RejectsBadMagic) {
  const fs::path path = temp_path("bad_magic.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(10), sink);

  std::string bytes = read_file_bytes(path);
  bytes[0] = 'X';
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

TEST(Spill, RejectsUnsupportedVersion) {
  const fs::path path = temp_path("bad_version.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(10), sink);

  std::string bytes = read_file_bytes(path);
  bytes[4] = 99;  // version field, above kVersion
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);

  bytes[4] = 0;  // below kMinVersion
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

TEST(Spill, RejectsTruncatedFile) {
  const fs::path path = temp_path("truncated.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(200), sink);

  const std::string bytes = read_file_bytes(path);
  // Chop the chunk index off the end: the index no longer fits the file.
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 12);
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);

  // A file cut inside the header is rejected too.
  std::ofstream(path, std::ios::binary) << bytes.substr(0, 20);
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

TEST(Spill, RejectsOversizedHeaderFields) {
  const fs::path path = temp_path("oversized.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(10), sink);
  const std::string bytes = read_file_bytes(path);

  // A chunk_count near 2^61 would wrap a multiplicative fit check and
  // escape as std::length_error from reserve(); it must stay StorageError.
  std::string huge_chunks = bytes;
  for (std::size_t b = 0; b < 8; ++b) {
    huge_chunks[store::glvt::kChunkCountOffset + b] =
        static_cast<char>(b == 7 ? 0x20 : 0x00);  // 2^61
  }
  std::ofstream(path, std::ios::binary) << huge_chunks;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);

  // A species-name length of 0xFFFFFFFF must be rejected before the
  // reader trusts it with an allocation.
  std::string huge_name = bytes;
  for (std::size_t b = 0; b < 4; ++b) {
    huge_name[store::glvt::kHeaderFixedBytesV2 + b] = '\xff';
  }
  std::ofstream(path, std::ios::binary) << huge_name;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

TEST(Spill, RejectsUnfinishedFile) {
  const fs::path path = temp_path("unfinished.glvt");
  {
    store::SpillSink sink(path.string(), {.chunk_samples = 64});
    sink.begin({"A", "B"});
    sink.append(0.0, {1.0, 2.0});
    // No finish(): the header keeps its index_offset == 0 sentinel.
  }
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

TEST(Spill, RejectsCorruptChunkMagic) {
  const fs::path path = temp_path("bad_chunk.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  const sim::Trace trace = synthetic_trace(10);
  stream_trace(trace, sink);

  // The first chunk starts right after the header: fixed prefix + one
  // (u32 length + bytes) record per species name.
  std::size_t chunk_offset = store::glvt::kHeaderFixedBytesV2;
  for (const auto& name : trace.species_names()) {
    chunk_offset += sizeof(std::uint32_t) + name.size();
  }
  std::string bytes = read_file_bytes(path);
  bytes[chunk_offset] = '?';
  std::ofstream(path, std::ios::binary) << bytes;

  store::SpillReader reader(path.string());  // header and index still valid
  EXPECT_THROW((void)reader.read_chunk(0), StorageError);
}

TEST(Spill, MissingFileRejected) {
  EXPECT_THROW(store::SpillReader{"/nonexistent/dir/missing.glvt"},
               StorageError);
}

// ----------------------------------------------------------- golden bytes

TEST(Spill, GoldenFileBytesAreStable) {
  const fs::path path = temp_path("golden_generated.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.seed = 123;
  options.sampling_period = 0.5;
  store::SpillSink sink(path.string(), options);
  stream_trace(synthetic_trace(150), sink);

  const std::string generated = read_file_bytes(path);
  const std::string golden =
      read_file_bytes(fs::path(GLVA_GOLDEN_DIR) / "spill_fixed.glvt");
  ASSERT_EQ(generated.size(), golden.size())
      << "regenerate tests/golden/spill_fixed.glvt if the .glvt format "
         "changed intentionally (and bump glvt::kVersion)";
  EXPECT_TRUE(generated == golden)
      << "byte-level .glvt drift — bump glvt::kVersion on format changes";
}

// ------------------------------------------------ v2 grid/words sections

TEST(GlvtCodec, UniformGridCollapsesToGridSection) {
  std::vector<double> times;
  for (std::size_t j = 0; j < 128; ++j) {
    times.push_back(static_cast<double>(64 + j) * 0.5);
  }
  std::string buffer;
  EXPECT_TRUE(store::glvt::encode_time_section(times, 64, 0.5, buffer));
  EXPECT_EQ(buffer.size(), 1u + 4u + 8u);  // tag + length + t0, per chunk

  std::vector<double> decoded;
  std::size_t offset = 0;
  store::glvt::decode_time_section_into(buffer, offset, times.size(), 64, 0.5,
                                        decoded);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(decoded, times);
}

TEST(GlvtCodec, OffGridTimesFallBackToSectionEncoding) {
  const std::vector<double> times = {0.0, 0.5, 1.01, 1.5};  // one off-grid
  std::string buffer;
  EXPECT_FALSE(store::glvt::encode_time_section(times, 0, 0.5, buffer));

  std::vector<double> decoded;
  std::size_t offset = 0;
  store::glvt::decode_time_section_into(buffer, offset, times.size(), 0, 0.5,
                                        decoded);
  EXPECT_EQ(decoded, times);
}

TEST(GlvtCodec, GridDecodeRejectsMismatchedStartTime) {
  std::vector<double> times;
  for (std::size_t j = 0; j < 64; ++j) {
    times.push_back(static_cast<double>(64 + j) * 0.5);
  }
  std::string buffer;
  ASSERT_TRUE(store::glvt::encode_time_section(times, 64, 0.5, buffer));

  // Decoding the same bytes as if the chunk sat elsewhere in the file must
  // fail the stored-t0 cross-check, not silently relabel the samples.
  std::vector<double> decoded;
  std::size_t offset = 0;
  EXPECT_THROW(store::glvt::decode_time_section_into(buffer, offset, 64, 128,
                                                     0.5, decoded),
               StorageError);

  // A truncated grid payload is rejected too.
  const std::string truncated = buffer.substr(0, buffer.size() - 4);
  offset = 0;
  EXPECT_THROW(store::glvt::decode_time_section_into(truncated, offset, 64,
                                                     64, 0.5, decoded),
               StorageError);
}

TEST(GlvtCodec, WordsSectionRoundTripAndErrors) {
  const std::vector<std::uint64_t> words = {0x0123456789ABCDEFull, 0xFFull};
  std::string buffer;
  store::glvt::encode_words_section(words.data(), words.size(), buffer);

  std::vector<std::uint64_t> decoded;
  std::size_t offset = 0;
  store::glvt::decode_words_section(buffer, offset, words.size(), decoded);
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(decoded, words);

  // Payload size disagreeing with the expected word count.
  offset = 0;
  std::vector<std::uint64_t> scratch;
  EXPECT_THROW(
      store::glvt::decode_words_section(buffer, offset, words.size() + 1,
                                        scratch),
      StorageError);

  // A non-kWords tag where a bit-plane section is required.
  std::string bad_tag = buffer;
  bad_tag[0] = 0;  // kRaw
  offset = 0;
  EXPECT_THROW(
      store::glvt::decode_words_section(bad_tag, offset, words.size(),
                                        scratch),
      StorageError);

  // Truncation inside the payload.
  const std::string truncated = buffer.substr(0, buffer.size() - 1);
  offset = 0;
  EXPECT_THROW(
      store::glvt::decode_words_section(truncated, offset, words.size(),
                                        scratch),
      StorageError);
}

// ------------------------------------------------ v1 backward compatibility

TEST(SpillV1, GoldenV1FixtureStillDecodesBitForBit) {
  const fs::path v1_path = fs::path(GLVA_GOLDEN_DIR) / "spill_fixed_v1.glvt";
  store::SpillReader reader(v1_path.string());
  EXPECT_EQ(reader.version(), 1u);
  EXPECT_EQ(reader.content_kind(), store::glvt::ContentKind::kAnalog);
  EXPECT_EQ(reader.threshold(), 0.0);
  EXPECT_EQ(reader.sample_count(), 150u);
  expect_traces_identical(synthetic_trace(150), reader.read_all());
}

TEST(SpillV1, V1WriterReproducesV1GoldenBytes) {
  // format_version = 1 must keep emitting the legacy layout byte for byte
  // (the compat contract the CI size-ratio smoke also leans on).
  const fs::path path = temp_path("v1_rewrite.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.seed = 123;
  options.sampling_period = 0.5;
  options.format_version = 1;
  store::SpillSink sink(path.string(), options);
  stream_trace(synthetic_trace(150), sink);

  EXPECT_TRUE(read_file_bytes(path) ==
              read_file_bytes(fs::path(GLVA_GOLDEN_DIR) /
                              "spill_fixed_v1.glvt"))
      << "v1 writer drifted from the checked-in v1 fixture";
}

TEST(SpillV1, V1ToV2UpgradeReplayMatchesV2Golden) {
  // Replaying the v1 fixture through a v2 sink is the upgrade path; its
  // bytes must equal the freshly written v2 golden exactly (same samples,
  // same parameters — only the container version differs).
  const fs::path v1_path = fs::path(GLVA_GOLDEN_DIR) / "spill_fixed_v1.glvt";
  store::SpillReader v1(v1_path.string());

  const fs::path upgraded = temp_path("upgraded_v2.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = v1.chunk_capacity();
  options.seed = v1.seed();
  options.sampling_period = v1.sampling_period();
  store::SpillSink sink(upgraded.string(), options);
  v1.replay(sink);

  EXPECT_TRUE(read_file_bytes(upgraded) ==
              read_file_bytes(fs::path(GLVA_GOLDEN_DIR) / "spill_fixed.glvt"));
}

TEST(SpillV1, V2GoldenIsGridCompressed) {
  const fs::path v2_path = fs::path(GLVA_GOLDEN_DIR) / "spill_fixed.glvt";
  store::SpillReader reader(v2_path.string());
  EXPECT_EQ(reader.version(), store::glvt::kVersion);
  // The whole point of kGrid: the same trace, meaningfully smaller (the
  // time column was most of the v1 file).
  EXPECT_LT(fs::file_size(v2_path),
            fs::file_size(fs::path(GLVA_GOLDEN_DIR) / "spill_fixed_v1.glvt"));
  expect_traces_identical(synthetic_trace(150), reader.read_all());
}

TEST(SpillV1, RejectsUnwritableFormatVersion) {
  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.format_version = 3;
  EXPECT_THROW(store::SpillSink("x.glvt", options), InvalidArgument);
  options.format_version = 0;
  EXPECT_THROW(store::SpillSink("x.glvt", options), InvalidArgument);
}

// ---------------------------------------------------- v2 file error paths

TEST(SpillV2, RejectsCorruptGridStartTime) {
  // Write a genuinely grid-compressed v2 file (times on the sink's
  // sampling grid), then flip a byte of the first chunk's stored t0: the
  // header and index stay valid, the chunk decode must throw.
  const fs::path path = temp_path("bad_grid.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.sampling_period = 0.5;
  store::SpillSink sink(path.string(), options);
  stream_trace(synthetic_trace(100), sink);

  std::size_t chunk_offset = store::glvt::kHeaderFixedBytesV2;
  for (const std::string name : {"A", "B", "GFP"}) {
    chunk_offset += sizeof(std::uint32_t) + name.size();
  }
  // Chunk layout: magic u32, samples u32, then the time section's
  // tag u8 + payload length u32 + t0 f64.
  const std::size_t t0_offset = chunk_offset + 4 + 4 + 1 + 4;
  std::string bytes = read_file_bytes(path);
  ASSERT_EQ(static_cast<store::glvt::SectionEncoding>(
                bytes[chunk_offset + 8]),
            store::glvt::SectionEncoding::kGrid);
  bytes[t0_offset + 3] ^= 0x40;
  std::ofstream(path, std::ios::binary) << bytes;

  store::SpillReader reader(path.string());
  EXPECT_THROW((void)reader.read_chunk(0), StorageError);
}

TEST(SpillV2, RejectsBadContentKindAndThresholdFields) {
  const fs::path path = temp_path("bad_content.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(10), sink);
  const std::string bytes = read_file_bytes(path);

  // An unknown content kind (the u32 right after index_offset).
  std::string bad_kind = bytes;
  bad_kind[store::glvt::kIndexOffsetOffset + 8] = 7;
  std::ofstream(path, std::ios::binary) << bad_kind;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);

  // A kBits file whose threshold field is zero is self-contradictory.
  std::string bits_no_threshold = bytes;
  bits_no_threshold[store::glvt::kIndexOffsetOffset + 8] = 1;  // kBits
  std::ofstream(path, std::ios::binary) << bits_no_threshold;
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

// ------------------------------------------------------- bit-plane spills

store::DigitizingSink::SpillOptions plane_spill(const fs::path& path) {
  store::DigitizingSink::SpillOptions spill;
  spill.path = path.string();
  spill.chunk_samples = 64;
  spill.seed = 9;
  spill.sampling_period = 0.5;
  return spill;
}

TEST(BitPlaneSpill, RoundTripMatchesInMemoryPlanes) {
  const sim::Trace trace = synthetic_trace(300);
  const fs::path path = temp_path("planes.glvt");
  store::DigitizingSink sink({"A", "B", "GFP"}, 15.0, plane_spill(path));
  EXPECT_EQ(sink.spill_path(), path.string());
  stream_trace(trace, sink);

  store::SpillReader reader(path.string());
  EXPECT_EQ(reader.version(), store::glvt::kVersion);
  EXPECT_EQ(reader.content_kind(), store::glvt::ContentKind::kBits);
  EXPECT_EQ(reader.threshold(), 15.0);
  EXPECT_EQ(reader.species_names(),
            (std::vector<std::string>{"A", "B", "GFP"}));
  EXPECT_EQ(reader.sample_count(), 300u);

  const std::vector<logic::BitStream> planes = reader.read_planes();
  ASSERT_EQ(planes.size(), 3u);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(planes[p], sink.planes()[p]) << "plane " << p;
  }

  // The analog APIs refuse a bit-plane file (and name the mismatch).
  EXPECT_THROW((void)reader.read_all(), StorageError);
  store::MemorySink memory;
  EXPECT_THROW(reader.replay(memory), StorageError);
  std::ostringstream csv;
  EXPECT_THROW(reader.write_csv(csv), StorageError);
}

TEST(BitPlaneSpill, RoundTripFuzzAcrossSizes) {
  // Ragged tails, exact word/chunk boundaries, empty stream.
  for (const std::size_t samples : {0u, 1u, 63u, 64u, 65u, 129u, 1000u}) {
    const sim::Trace trace = synthetic_trace(samples);
    const fs::path path =
        temp_path("planes_fuzz_" + std::to_string(samples) + ".glvt");
    store::DigitizingSink sink({"GFP", "A"}, 10.0, plane_spill(path));
    stream_trace(trace, sink);

    store::SpillReader reader(path.string());
    ASSERT_EQ(reader.sample_count(), samples);
    const std::vector<logic::BitStream> planes = reader.read_planes();
    ASSERT_EQ(planes.size(), 2u);
    EXPECT_EQ(planes[0], sink.planes()[0]) << samples << " samples";
    EXPECT_EQ(planes[1], sink.planes()[1]) << samples << " samples";
  }
}

TEST(BitPlaneSpill, LoadDigitizedMatchesTakeDigitized) {
  const sim::Trace trace = synthetic_trace(500);
  const fs::path path = temp_path("planes_load.glvt");
  store::DigitizingSink sink({"A", "B", "GFP"}, 15.0, plane_spill(path));
  stream_trace(trace, sink);
  const core::PackedDigitalData direct = core::take_digitized(sink, 2);

  store::SpillReader reader(path.string());
  const core::PackedDigitalData loaded = core::load_digitized(reader, 2, 15.0);
  ASSERT_EQ(loaded.inputs.size(), direct.inputs.size());
  EXPECT_EQ(loaded.inputs[0], direct.inputs[0]);
  EXPECT_EQ(loaded.inputs[1], direct.inputs[1]);
  EXPECT_EQ(loaded.output, direct.output);

  // A bit-exact threshold match is required — planes digitized at 15.0
  // must not be passed off as planes for any other threshold.
  EXPECT_THROW((void)core::load_digitized(reader, 2, 15.5), InvalidArgument);
  // Plane count must cover inputs + output.
  EXPECT_THROW((void)core::load_digitized(reader, 3, 15.0), InvalidArgument);
}

TEST(BitPlaneSpill, ReadPlanesRejectsAnalogFile) {
  const fs::path path = temp_path("analog_not_planes.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(synthetic_trace(10), sink);
  store::SpillReader reader(path.string());
  EXPECT_THROW((void)reader.read_planes(), StorageError);
}

TEST(BitPlaneSpill, RejectsCorruptWordsSection) {
  const fs::path path = temp_path("bad_words.glvt");
  store::DigitizingSink sink({"A", "B", "GFP"}, 15.0, plane_spill(path));
  stream_trace(synthetic_trace(100), sink);

  std::size_t chunk_offset = store::glvt::kHeaderFixedBytesV2;
  for (const std::string name : {"A", "B", "GFP"}) {
    chunk_offset += sizeof(std::uint32_t) + name.size();
  }
  std::string bytes = read_file_bytes(path);
  ASSERT_EQ(static_cast<store::glvt::SectionEncoding>(
                bytes[chunk_offset + 8]),
            store::glvt::SectionEncoding::kWords);
  bytes[chunk_offset + 8] = 0;  // kRaw where kWords is required
  std::ofstream(path, std::ios::binary) << bytes;

  store::SpillReader reader(path.string());
  EXPECT_THROW((void)reader.read_planes(), StorageError);
}

// ------------------------------------------------------ async spill writer

TEST(AsyncSpill, SyncEnvEscapeHatchWritesIdenticalBytes) {
  const sim::Trace trace = synthetic_trace(1000);
  const fs::path async_path = temp_path("async.glvt");
  const fs::path sync_path = temp_path("sync.glvt");

  store::SpillSink::Options options;
  options.chunk_samples = 64;
  options.sampling_period = 0.5;
  {
    store::SpillSink sink(async_path.string(), options);
    stream_trace(trace, sink);
  }
  ::setenv("GLVA_SYNC_SPILL", "1", 1);
  {
    store::SpillSink sink(sync_path.string(), options);
    stream_trace(trace, sink);
  }
  ::unsetenv("GLVA_SYNC_SPILL");

  EXPECT_TRUE(read_file_bytes(async_path) == read_file_bytes(sync_path))
      << "GLVA_SYNC_SPILL must be a pure scheduling switch, not a format one";
}

TEST(AsyncSpill, WriterErrorSurfacesAsStorageError) {
  // /dev/full accepts the open and fails every flush with ENOSPC — the
  // canonical injection point for the latched-error contract. The error
  // may surface from an append (latched by the writer thread) or from
  // finish(); either way it must be StorageError, not a silent truncation.
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full not available";
  EXPECT_THROW(
      {
        store::SpillSink sink("/dev/full", {.chunk_samples = 64});
        stream_trace(synthetic_trace(20000), sink);
      },
      StorageError);
}

TEST(AsyncSpill, DestructionWithoutFinishLeavesRejectedFile) {
  // Exception-unwind path: the writer thread must join cleanly and the
  // unfinished file must keep its index_offset == 0 sentinel.
  const fs::path path = temp_path("abandoned.glvt");
  {
    store::SpillSink sink(path.string(), {.chunk_samples = 64});
    sink.begin({"A", "B"});
    for (std::size_t k = 0; k < 500; ++k) {
      sink.append(static_cast<double>(k), {1.0, 2.0});
    }
    // No finish().
  }
  EXPECT_THROW(store::SpillReader{path.string()}, StorageError);
}

// -------------------------------------------------------- DigitizingSink

TEST(DigitizingSink, MatchesDigitizePackedOverMaterializedTrace) {
  const sim::Trace trace = synthetic_trace(500);
  store::DigitizingSink sink({"A", "B", "GFP"}, 15.0);
  stream_trace(trace, sink);
  EXPECT_EQ(sink.sample_count(), 500u);

  const core::PackedDigitalData expected =
      core::digitize_packed(trace, {"A", "B"}, "GFP", 15.0);
  EXPECT_EQ(sink.planes()[0], expected.inputs[0]);
  EXPECT_EQ(sink.planes()[1], expected.inputs[1]);
  EXPECT_EQ(sink.planes()[2], expected.output);
}

TEST(DigitizingSink, ReplayFromSpillMatchesDirectDigitization) {
  const sim::Trace trace = synthetic_trace(300);
  const fs::path path = temp_path("replay.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(trace, sink);

  store::SpillReader reader(path.string());
  store::DigitizingSink digitizer({"GFP", "A"}, 10.0);
  reader.replay(digitizer);

  EXPECT_EQ(digitizer.planes()[0],
            core::adc_packed(trace.series("GFP"), 10.0));
  EXPECT_EQ(digitizer.planes()[1], core::adc_packed(trace.series("A"), 10.0));
}

TEST(DigitizingSink, ValidatesArguments) {
  EXPECT_THROW(store::DigitizingSink({}, 15.0), InvalidArgument);
  EXPECT_THROW(store::DigitizingSink({"A"}, 0.0), InvalidArgument);
  store::DigitizingSink sink({"missing"}, 15.0);
  EXPECT_THROW(sink.begin({"A", "B"}), InvalidArgument);
  store::DigitizingSink ok({"A"}, 15.0);
  ok.begin({"A"});
  EXPECT_THROW((void)ok.take_plane(1), InvalidArgument);
}

// ------------------------------------------------- block-path equivalence

/// Deliver rows [offset, offset + count) of a materialized trace as one
/// column-wise block.
void stream_block(const sim::Trace& trace, store::TraceSink& sink,
                  std::size_t offset, std::size_t count) {
  std::vector<std::span<const double>> columns(trace.species_count());
  for (std::size_t s = 0; s < trace.species_count(); ++s) {
    columns[s] = std::span<const double>(trace.series(s)).subspan(offset, count);
  }
  sink.append_block(
      std::span<const double>(trace.times()).subspan(offset, count), columns);
}

/// Stream a trace through `sink` as a sequence of blocks whose sizes cycle
/// through `block_sizes` (the tail block is whatever remains).
void stream_trace_blocks(const sim::Trace& trace, store::TraceSink& sink,
                         const std::vector<std::size_t>& block_sizes) {
  sink.begin(trace.species_names());
  std::size_t offset = 0;
  std::size_t next = 0;
  while (offset < trace.sample_count()) {
    const std::size_t count = std::min(block_sizes[next % block_sizes.size()],
                                       trace.sample_count() - offset);
    stream_block(trace, sink, offset, count);
    offset += count;
    ++next;
  }
  sink.finish();
}

/// A sink implementing only the row contract: append_block must fall back
/// to the base class's row-wise loop.
class RowOnlySink final : public store::TraceSink {
public:
  void begin(const std::vector<std::string>& species_names) override {
    trace_ = sim::Trace(species_names);
  }
  void append(double time, const std::vector<double>& values) override {
    trace_.append(time, values);
  }
  void finish() override {}
  [[nodiscard]] const sim::Trace& trace() const noexcept { return trace_; }

private:
  sim::Trace trace_;
};

// The block sizes the fuzz slices streams into (single rows, one-off-word
// boundaries, exact words, a whole chunk, a ragged cycle) — shared with
// the SIMD conformance suite through tests/fuzz_util.h.
const std::vector<std::vector<std::size_t>>& kBlockSlicings =
    testutil::block_slicings();

TEST(AppendBlock, MemorySinkMatchesRowPathAcrossBlockSizes) {
  for (const std::size_t samples : {1u, 150u, 1000u}) {
    const sim::Trace trace = synthetic_trace(samples);
    store::MemorySink rows;
    stream_trace(trace, rows);
    for (const auto& slicing : kBlockSlicings) {
      store::MemorySink blocks;
      stream_trace_blocks(trace, blocks, slicing);
      expect_traces_identical(rows.trace(), blocks.trace());
    }
  }
}

TEST(AppendBlock, SpillSinkWritesIdenticalBytesAcrossBlockSizes) {
  for (const std::uint32_t chunk : {64u, 4096u}) {
    const sim::Trace trace = synthetic_trace(333);
    store::SpillSink::Options options;
    options.chunk_samples = chunk;
    const fs::path row_path = temp_path("block_rows.glvt");
    store::SpillSink row_sink(row_path.string(), options);
    stream_trace(trace, row_sink);
    const std::string row_bytes = read_file_bytes(row_path);

    for (std::size_t v = 0; v < kBlockSlicings.size(); ++v) {
      const fs::path block_path =
          temp_path("block_" + std::to_string(chunk) + "_" +
                    std::to_string(v) + ".glvt");
      store::SpillSink block_sink(block_path.string(), options);
      stream_trace_blocks(trace, block_sink, kBlockSlicings[v]);
      EXPECT_EQ(read_file_bytes(block_path), row_bytes)
          << "chunk " << chunk << ", slicing " << v;
    }
  }
}

TEST(AppendBlock, BitPlaneSpillWritesIdenticalBytesAcrossBlockSizes) {
  const sim::Trace trace = synthetic_trace(333);
  const fs::path row_path = temp_path("planes_rows.glvt");
  store::DigitizingSink rows({"A", "GFP"}, 15.0, plane_spill(row_path));
  stream_trace(trace, rows);
  const std::string row_bytes = read_file_bytes(row_path);

  for (std::size_t v = 0; v < kBlockSlicings.size(); ++v) {
    const fs::path block_path =
        temp_path("planes_blocks_" + std::to_string(v) + ".glvt");
    store::DigitizingSink blocks({"A", "GFP"}, 15.0,
                                 plane_spill(block_path));
    stream_trace_blocks(trace, blocks, kBlockSlicings[v]);
    EXPECT_EQ(read_file_bytes(block_path), row_bytes) << "slicing " << v;
  }
}

TEST(AppendBlock, DigitizingSinkMatchesRowPathAcrossBlockSizes) {
  for (const std::size_t samples : {1u, 63u, 64u, 65u, 500u, 1000u}) {
    const sim::Trace trace = synthetic_trace(samples);
    store::DigitizingSink rows({"A", "B", "GFP"}, 15.0);
    stream_trace(trace, rows);
    for (std::size_t v = 0; v < kBlockSlicings.size(); ++v) {
      store::DigitizingSink blocks({"A", "B", "GFP"}, 15.0);
      stream_trace_blocks(trace, blocks, kBlockSlicings[v]);
      ASSERT_EQ(blocks.sample_count(), rows.sample_count());
      for (std::size_t p = 0; p < 3; ++p) {
        EXPECT_EQ(blocks.planes()[p], rows.planes()[p])
            << "samples " << samples << ", slicing " << v << ", plane " << p;
      }
    }
  }
}

TEST(AppendBlock, RowAndBlockDeliveriesInterleave) {
  const sim::Trace trace = synthetic_trace(200);
  store::DigitizingSink reference({"GFP"}, 15.0);
  stream_trace(trace, reference);

  store::DigitizingSink mixed({"GFP"}, 15.0);
  mixed.begin(trace.species_names());
  std::vector<double> row(trace.species_count());
  std::size_t offset = 0;
  // 10 single rows, then a 70-row block, then rows to 150, a tail block.
  const auto append_rows = [&](std::size_t count) {
    for (std::size_t k = 0; k < count; ++k, ++offset) {
      for (std::size_t s = 0; s < row.size(); ++s) {
        row[s] = trace.series(s)[offset];
      }
      mixed.append(trace.times()[offset], row);
    }
  };
  append_rows(10);
  stream_block(trace, mixed, offset, 70);
  offset += 70;
  append_rows(70);
  stream_block(trace, mixed, offset, trace.sample_count() - offset);
  mixed.finish();

  EXPECT_EQ(mixed.planes()[0], reference.planes()[0]);
}

TEST(AppendBlock, BaseClassFallbackDeliversRowwise) {
  const sim::Trace trace = synthetic_trace(150);
  RowOnlySink sink;
  stream_trace_blocks(trace, sink, {64, 3});
  expect_traces_identical(trace, sink.trace());
}

TEST(AppendBlock, RejectsColumnsShorterThanTheTimeColumn) {
  const sim::Trace trace = synthetic_trace(10);
  const std::span<const double> times(trace.times());
  std::vector<std::span<const double>> ragged(trace.species_count());
  for (std::size_t s = 0; s < trace.species_count(); ++s) {
    ragged[s] = std::span<const double>(trace.series(s))
                    .subspan(0, s == 1 ? 9 : 10);  // one short column
  }

  RowOnlySink base_fallback;
  base_fallback.begin(trace.species_names());
  EXPECT_THROW(base_fallback.append_block(times, ragged), InvalidArgument);

  store::MemorySink memory;
  memory.begin(trace.species_names());
  EXPECT_THROW(memory.append_block(times, ragged), InvalidArgument);

  store::DigitizingSink digitize({"B"}, 15.0);
  digitize.begin(trace.species_names());
  EXPECT_THROW(digitize.append_block(times, ragged), InvalidArgument);
}

// ------------------------------------------------------------ chunk replay

TEST(Replay, BlockReplayMatchesRowReplay) {
  const sim::Trace trace = synthetic_trace(500);
  const fs::path path = temp_path("replay_block.glvt");
  store::SpillSink sink(path.string(), {.chunk_samples = 64});
  stream_trace(trace, sink);

  store::SpillReader reader(path.string());
  store::MemorySink by_rows;
  reader.replay_rows(by_rows);
  store::MemorySink by_blocks;
  reader.replay(by_blocks);
  expect_traces_identical(by_rows.trace(), by_blocks.trace());

  store::DigitizingSink digitize_rows({"GFP", "A"}, 10.0);
  reader.replay_rows(digitize_rows);
  store::DigitizingSink digitize_blocks({"GFP", "A"}, 10.0);
  reader.replay(digitize_blocks);
  EXPECT_EQ(digitize_blocks.planes()[0], digitize_rows.planes()[0]);
  EXPECT_EQ(digitize_blocks.planes()[1], digitize_rows.planes()[1]);
}

TEST(Replay, ChunkReplayOfGoldenFileIsByteIdentical) {
  // Replaying the checked-in golden spill chunk-by-chunk into a fresh
  // SpillSink with the golden's own parameters must reproduce the file
  // byte for byte — blocks cross the whole write path (chunking, RLE/raw
  // section choice, index, header patch) without perturbing a bit.
  const fs::path golden_path = fs::path(GLVA_GOLDEN_DIR) / "spill_fixed.glvt";
  store::SpillReader reader(golden_path.string());

  const fs::path replayed_path = temp_path("golden_replayed.glvt");
  store::SpillSink::Options options;
  options.chunk_samples = reader.chunk_capacity();
  options.seed = reader.seed();
  options.sampling_period = reader.sampling_period();
  store::SpillSink sink(replayed_path.string(), options);
  reader.replay(sink);

  EXPECT_TRUE(read_file_bytes(replayed_path) ==
              read_file_bytes(golden_path))
      << "block-path chunk replay drifted from the golden .glvt bytes";
}

// ------------------------------------------- experiment-level bit-identity

TEST(ExperimentSinks, AllThreeSinksProduceBitIdenticalAnalyses) {
  const auto spec = circuits::CircuitRepository::build("myers_and");
  core::ExperimentConfig config;
  config.total_time = 400.0;
  config.seed = 11;

  const auto memory = core::run_experiment(spec, config);

  config.sink = store::SinkKind::kSpill;
  config.spill_dir = (fs::path(::testing::TempDir()) / "exp_spill").string();
  const auto spill = core::run_experiment(spec, config);

  config.sink = store::SinkKind::kDigitize;
  const auto digitize = core::run_experiment(spec, config);

  expect_extractions_identical(memory.extraction, spill.extraction);
  expect_extractions_identical(memory.extraction, digitize.extraction);
  EXPECT_EQ(memory.verification.matches, spill.verification.matches);
  EXPECT_EQ(memory.verification.matches, digitize.verification.matches);
  EXPECT_EQ(memory.verification.wrong_state_count(),
            digitize.verification.wrong_state_count());

  // The spill path re-materializes the identical trace and leaves the
  // .glvt behind; the digitize path never materializes one.
  expect_traces_identical(memory.sweep.trace, spill.sweep.trace);
  EXPECT_EQ(digitize.sweep.trace.sample_count(), 0u);
  EXPECT_TRUE(fs::exists(fs::path(config.spill_dir) /
                         (spec.name + "-s11.glvt")));
}

TEST(ExperimentSinks, SpillRequiresDirectory) {
  const auto spec = circuits::CircuitRepository::build("myers_not");
  core::ExperimentConfig config;
  config.total_time = 100.0;
  config.sink = store::SinkKind::kSpill;
  EXPECT_THROW((void)core::run_experiment(spec, config), InvalidArgument);
}

TEST(ExperimentSinks, DigitizeRejectsReferenceBackend) {
  const auto spec = circuits::CircuitRepository::build("myers_not");
  core::ExperimentConfig config;
  config.total_time = 100.0;
  config.sink = store::SinkKind::kDigitize;
  config.backend = core::AnalysisBackend::kReference;
  EXPECT_THROW((void)core::run_experiment(spec, config), InvalidArgument);
}

TEST(ExperimentSinks, EnsembleSpillIsJobCountInvariantWithPerReplicateFiles) {
  const auto spec = circuits::CircuitRepository::build("0x1");
  core::ExperimentConfig config;
  config.total_time = 300.0;
  config.seed = 42;
  config.sink = store::SinkKind::kSpill;
  config.spill_dir =
      (fs::path(::testing::TempDir()) / "ensemble_spill").string();

  const auto serial = core::run_ensemble(spec, config, 3, 1);
  const auto parallel = core::run_ensemble(spec, config, 3, 8);
  EXPECT_EQ(core::render_ensemble_summary(serial),
            core::render_ensemble_summary(parallel));

  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(fs::exists(
        fs::path(config.spill_dir) /
        (spec.name + "-s42-r" + std::to_string(r) + ".glvt")))
        << "replicate " << r;
  }
}

TEST(ExperimentSinks, DigitizeSinkIsJobCountInvariant) {
  const auto spec = circuits::CircuitRepository::build("myers_and");
  core::ExperimentConfig config;
  config.total_time = 300.0;
  config.seed = 5;
  config.sink = store::SinkKind::kDigitize;

  const auto serial = core::run_ensemble(spec, config, 3, 1);
  const auto parallel = core::run_ensemble(spec, config, 3, 8);
  EXPECT_EQ(core::render_ensemble_summary(serial),
            core::render_ensemble_summary(parallel));
}

// ----------------------------------------------- ensemble confidence (CI)

TEST(EnsembleConfidence, MatchesReplicateStatistics) {
  const auto spec = circuits::CircuitRepository::build("myers_not");
  core::ExperimentConfig config;
  config.total_time = 300.0;
  config.seed = 3;

  // The replicates stream through the ordered commit observer — fold the
  // same statistics by hand and compare against the reduced ensemble.
  util::RunningStats pfobe;
  util::RunningStats wrong;
  const auto ensemble = core::run_ensemble(
      spec, config, 4, 1,
      [&](std::size_t, const core::ExperimentResult& replicate) {
        pfobe.add(replicate.extraction.fitness());
        wrong.add(
            static_cast<double>(replicate.verification.wrong_state_count()));
      });
  EXPECT_DOUBLE_EQ(ensemble.pfobe.mean, pfobe.mean());
  EXPECT_DOUBLE_EQ(ensemble.pfobe.stddev, pfobe.stddev());
  EXPECT_DOUBLE_EQ(ensemble.pfobe.half_width,
                   util::normal_ci95_half_width(pfobe.stddev(), 4));
  // mean_confidence is exactly this projection of a Welford accumulator.
  const core::MeanConfidence projected = core::mean_confidence(pfobe);
  EXPECT_DOUBLE_EQ(projected.mean, ensemble.pfobe.mean);
  EXPECT_DOUBLE_EQ(projected.stddev, ensemble.pfobe.stddev);
  EXPECT_DOUBLE_EQ(projected.half_width, ensemble.pfobe.half_width);
  EXPECT_DOUBLE_EQ(ensemble.wrong_states.mean, wrong.mean());
  EXPECT_DOUBLE_EQ(ensemble.pfobe.lower(),
                   ensemble.pfobe.mean - ensemble.pfobe.half_width);

  const std::string summary = core::render_ensemble_summary(ensemble);
  EXPECT_NE(summary.find("95% normal CI"), std::string::npos);
  const std::string csv = core::ensemble_confidence_csv(ensemble);
  EXPECT_NE(csv.find("pfobe_percent"), std::string::npos);
  EXPECT_NE(csv.find("wrong_states"), std::string::npos);
}

TEST(EnsembleConfidence, SingleReplicateHasZeroHalfWidth) {
  EXPECT_EQ(util::normal_ci95_half_width(1.5, 1), 0.0);
  EXPECT_GT(util::normal_ci95_half_width(1.5, 4), 0.0);
}

}  // namespace
