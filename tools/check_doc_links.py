#!/usr/bin/env python3
"""Fail on dead intra-repo Markdown links.

Scans every tracked-looking ``*.md`` file in the repository for inline
Markdown links (``[text](target)``) and checks that relative targets
resolve to an existing file or directory. External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#section``) are ignored;
``path#fragment`` targets are checked for the path part only.

Usage: ``python3 tools/check_doc_links.py [repo_root]`` (default: the
repository containing this script). Exits 0 when every link resolves,
1 otherwise, listing each dead link as ``file:line: target``.
"""

import re
import sys
from pathlib import Path

# Inline links only; reference-style definitions are rare enough here that
# the repo does not use them. The target group stops at whitespace or ')'.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIR_PARTS = {".git", "build", "build-asan", "build-tsan", "_deps"}
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        parts = set(path.relative_to(root).parts[:-1])
        if parts & SKIP_DIR_PARTS or any(
            p.startswith("build") for p in parts
        ):
            continue
        yield path


def dead_links(path: Path):
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                yield lineno, target


def main() -> int:
    root = (
        Path(sys.argv[1]).resolve()
        if len(sys.argv) > 1
        else Path(__file__).resolve().parent.parent
    )
    failures = []
    checked = 0
    for md in iter_markdown_files(root):
        checked += 1
        for lineno, target in dead_links(md):
            failures.append(f"{md.relative_to(root)}:{lineno}: {target}")
    if failures:
        print("dead intra-repo Markdown links:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"doc-link check: {checked} Markdown file(s), all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
